package graph

import (
	"fmt"
	"sort"
)

// DAG is one workload's directed acyclic graph. Nodes are interned by ID:
// applying the same operation to the same inputs twice yields the same
// *Node, which is how redundant operations inside a single script collapse
// (the paper's local-pruning observation in §7.2).
type DAG struct {
	nodes map[string]*Node
	// order preserves insertion order for deterministic iteration.
	order []*Node
}

// NewDAG returns an empty workload DAG.
func NewDAG() *DAG {
	return &DAG{nodes: make(map[string]*Node)}
}

// Nodes returns all vertices in insertion order. The slice must not be
// mutated.
func (g *DAG) Nodes() []*Node { return g.order }

// Node returns the vertex with the given ID, or nil.
func (g *DAG) Node(id string) *Node { return g.nodes[id] }

// Len returns the vertex count.
func (g *DAG) Len() int { return len(g.order) }

// Sources returns the source vertices in insertion order.
func (g *DAG) Sources() []*Node {
	var out []*Node
	for _, n := range g.order {
		if n.IsSource() {
			out = append(out, n)
		}
	}
	return out
}

// intern registers n unless a node with the same ID exists, in which case
// the existing node is returned.
func (g *DAG) intern(n *Node) *Node {
	if existing, ok := g.nodes[n.ID]; ok {
		return existing
	}
	g.nodes[n.ID] = n
	g.order = append(g.order, n)
	return n
}

// Adopt interns a fully constructed node — used when reconstructing a DAG
// from wire metadata, where node IDs were computed by the sender. If a
// node with the same ID exists, the existing node is returned.
func (g *DAG) Adopt(n *Node) *Node { return g.intern(n) }

// AddSource registers (or returns) the source vertex for a named raw
// dataset whose content is already present. The content may be nil when the
// DAG is only being described (e.g. on the server side).
func (g *DAG) AddSource(name string, content Artifact) *Node {
	n := &Node{
		ID:       SourceID(name),
		Kind:     DatasetKind,
		Name:     name,
		Computed: content != nil,
		Content:  content,
	}
	if content != nil {
		n.SizeBytes = content.SizeBytes()
	}
	return g.intern(n)
}

// Apply derives the child of parent under op, interning it. It is the
// single-input edge constructor.
func (g *DAG) Apply(parent *Node, op Operation) *Node {
	return g.applyMulti(op, []*Node{parent})
}

// Combine derives the child of several parents under a multi-input op,
// inserting the supernode per §4.1.
func (g *DAG) Combine(op Operation, parents ...*Node) *Node {
	super := &Node{
		ID:      DeriveNodeID("supernode", parents),
		Kind:    SupernodeKind,
		Name:    "super(" + op.Name() + ")",
		Parents: parents,
	}
	super = g.intern(super)
	return g.applyMulti(op, []*Node{super})
}

func (g *DAG) applyMulti(op Operation, parents []*Node) *Node {
	n := &Node{
		ID:      DeriveNodeID(op.Hash(), parents),
		Kind:    op.OutKind(),
		Name:    op.Name(),
		Op:      op,
		Parents: parents,
	}
	return g.intern(n)
}

// TopoOrder returns the ancestors of the given terminal vertices (the
// terminals included) in a topological order that is deterministic for a
// given DAG. If terminals is empty, all vertices are ordered.
func (g *DAG) TopoOrder(terminals ...*Node) []*Node {
	need := make(map[string]bool)
	if len(terminals) == 0 {
		for id := range g.nodes {
			need[id] = true
		}
	} else {
		var mark func(n *Node)
		mark = func(n *Node) {
			if need[n.ID] {
				return
			}
			need[n.ID] = true
			for _, p := range n.Parents {
				mark(p)
			}
		}
		for _, t := range terminals {
			mark(t)
		}
	}
	// Kahn's algorithm over the needed subgraph, seeded in insertion
	// order for determinism.
	indeg, children := g.Indegrees(need)
	var out []*Node
	queue := g.Ready(need, indeg)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		for _, c := range children[n.ID] {
			indeg[c.ID]--
			if indeg[c.ID] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(out) != len(need) {
		// A cycle would be a construction bug; fail loudly.
		panic(fmt.Sprintf("graph: cycle detected: ordered %d of %d vertices", len(out), len(need)))
	}
	return out
}

// Indegrees computes, for the sub-DAG induced by the need set (the whole
// DAG when need is nil), each vertex's count of in-subgraph parent edges
// and the child adjacency, both keyed by vertex ID. A parent listed twice
// contributes two edges, mirroring the decrements a scheduler performs.
// Schedulers (TopoOrder, the parallel executor) consume this as the
// dependency-counting state.
func (g *DAG) Indegrees(need map[string]bool) (indeg map[string]int, children map[string][]*Node) {
	indeg = make(map[string]int)
	children = make(map[string][]*Node)
	for _, n := range g.order {
		if need != nil && !need[n.ID] {
			continue
		}
		for _, p := range n.Parents {
			if need != nil && !need[p.ID] {
				continue
			}
			indeg[n.ID]++
			children[p.ID] = append(children[p.ID], n)
		}
	}
	return indeg, children
}

// Ready returns the vertices of the sub-DAG induced by need (the whole DAG
// when nil) whose indegree is zero, in insertion order — the initial ready
// set of a dependency-counting scheduler. indeg is the map produced by
// Indegrees for the same need set.
func (g *DAG) Ready(need map[string]bool, indeg map[string]int) []*Node {
	var out []*Node
	for _, n := range g.order {
		if need != nil && !need[n.ID] {
			continue
		}
		if indeg[n.ID] == 0 {
			out = append(out, n)
		}
	}
	return out
}

// Terminals returns vertices with no children among the DAG's nodes, the
// implicit workload outputs.
func (g *DAG) Terminals() []*Node {
	hasChild := make(map[string]bool)
	for _, n := range g.order {
		for _, p := range n.Parents {
			hasChild[p.ID] = true
		}
	}
	var out []*Node
	for _, n := range g.order {
		if !hasChild[n.ID] {
			out = append(out, n)
		}
	}
	return out
}

// MarkComputed runs the local pruner (§3.1): every vertex whose content is
// already present is marked Computed so the optimizer assigns it Ci=0.
// Returns the number of vertices marked.
func (g *DAG) MarkComputed() int {
	count := 0
	for _, n := range g.order {
		if n.Content != nil && !n.Computed {
			n.Computed = true
			count++
		}
		if n.Computed {
			count++
		}
	}
	return count
}

// Stats summarizes a DAG for reporting: vertex count per kind and total
// content bytes of computed vertices.
func (g *DAG) Stats() map[string]int {
	out := make(map[string]int)
	for _, n := range g.order {
		out[n.Kind.String()]++
	}
	return out
}

// IDs returns the sorted vertex IDs (diagnostics, test assertions).
func (g *DAG) IDs() []string {
	ids := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
