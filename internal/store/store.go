// Package store implements the artifact storage manager (§5.3): a
// content-addressed store that deduplicates dataset columns by their
// lineage IDs, so two artifacts sharing columns cost the shared bytes only
// once. Models and aggregates are stored as whole blobs.
package store

import (
	"fmt"
	"sync"

	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Metrics holds the manager's optional observability counters. All fields
// are nil-safe (see internal/obs): an uninstrumented manager pays only a
// nil check per operation.
type Metrics struct {
	// GetHits / GetMisses count lookups by outcome.
	GetHits, GetMisses *obs.Counter
	// Puts counts artifacts admitted (no-op re-puts excluded).
	Puts *obs.Counter
	// Evictions counts artifacts removed.
	Evictions *obs.Counter
	// BytesFetched accumulates the logical size of artifacts served by Get.
	BytesFetched *obs.Counter
}

type colEntry struct {
	col  *data.Column
	refs int
}

type manifest struct {
	colIDs []string
	names  []string
}

// Manager stores artifact content for materialized Experiment Graph
// vertices. It is safe for concurrent use.
type Manager struct {
	mu      sync.RWMutex
	profile cost.Profile

	cols   map[string]*colEntry
	frames map[string]manifest
	blobs  map[string]graph.Artifact
	// blobSizes caches blob sizes so physical accounting is O(1).
	blobSizes map[string]int64
	physical  int64
	logical   map[string]int64

	met Metrics
}

// Instrument installs observability counters on the manager; the zero
// Metrics value (all nil) returns it to the uninstrumented state.
func (m *Manager) Instrument(met Metrics) {
	m.mu.Lock()
	m.met = met
	m.mu.Unlock()
}

// New returns an empty storage manager with the given load-cost profile.
func New(profile cost.Profile) *Manager {
	return &Manager{
		profile:   profile,
		cols:      make(map[string]*colEntry),
		frames:    make(map[string]manifest),
		blobs:     make(map[string]graph.Artifact),
		blobSizes: make(map[string]int64),
		logical:   make(map[string]int64),
	}
}

// Profile returns the manager's load-cost profile.
func (m *Manager) Profile() cost.Profile { return m.profile }

// Put stores the artifact content for a vertex. Dataset artifacts are
// decomposed into deduplicated columns; other artifacts are stored whole.
// Putting an already-present vertex is a no-op.
func (m *Manager) Put(vertexID string, a graph.Artifact) error {
	if a == nil {
		return fmt.Errorf("store: nil artifact for %s", vertexID)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.hasLocked(vertexID) {
		return nil
	}
	m.met.Puts.Inc()
	if ds, ok := a.(*graph.DatasetArtifact); ok && ds.Frame != nil {
		man := manifest{}
		for _, c := range ds.Frame.Columns() {
			man.colIDs = append(man.colIDs, c.ID)
			man.names = append(man.names, c.Name)
			if e, exists := m.cols[c.ID]; exists {
				e.refs++
			} else {
				m.cols[c.ID] = &colEntry{col: c, refs: 1}
				m.physical += c.SizeBytes()
			}
		}
		m.frames[vertexID] = man
		m.logical[vertexID] = ds.SizeBytes()
		return nil
	}
	m.blobs[vertexID] = a
	sz := a.SizeBytes()
	m.blobSizes[vertexID] = sz
	m.physical += sz
	m.logical[vertexID] = sz
	return nil
}

// Get retrieves the artifact content for a vertex, or nil if absent.
// Dataset artifacts are reassembled from the column store; the returned
// frame shares the stored column arrays (in-memory EG semantics).
func (m *Manager) Get(vertexID string) graph.Artifact {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if man, ok := m.frames[vertexID]; ok {
		cols := make([]*data.Column, 0, len(man.colIDs))
		for i, id := range man.colIDs {
			e, exists := m.cols[id]
			if !exists {
				m.met.GetMisses.Inc()
				return nil // torn entry; treat as absent
			}
			c := e.col
			if c.Name != man.names[i] {
				c = c.WithID(c.ID)
				c.Name = man.names[i]
			}
			cols = append(cols, c)
		}
		f, err := data.NewFrame(cols...)
		if err != nil {
			m.met.GetMisses.Inc()
			return nil
		}
		m.met.GetHits.Inc()
		m.met.BytesFetched.Add(m.logical[vertexID])
		return &graph.DatasetArtifact{Frame: f}
	}
	if b, ok := m.blobs[vertexID]; ok {
		m.met.GetHits.Inc()
		m.met.BytesFetched.Add(m.logical[vertexID])
		return b
	}
	m.met.GetMisses.Inc()
	return nil
}

// Has reports whether the vertex's content is stored.
func (m *Manager) Has(vertexID string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.hasLocked(vertexID)
}

func (m *Manager) hasLocked(vertexID string) bool {
	if _, ok := m.frames[vertexID]; ok {
		return true
	}
	_, ok := m.blobs[vertexID]
	return ok
}

// Evict removes a vertex's content, releasing column references and
// reclaiming physical space for columns no longer referenced.
func (m *Manager) Evict(vertexID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if man, ok := m.frames[vertexID]; ok {
		for _, id := range man.colIDs {
			e := m.cols[id]
			if e == nil {
				continue
			}
			e.refs--
			if e.refs <= 0 {
				m.physical -= e.col.SizeBytes()
				delete(m.cols, id)
			}
		}
		delete(m.frames, vertexID)
		delete(m.logical, vertexID)
		m.met.Evictions.Inc()
		return
	}
	if _, ok := m.blobs[vertexID]; ok {
		m.physical -= m.blobSizes[vertexID]
		delete(m.blobs, vertexID)
		delete(m.blobSizes, vertexID)
		delete(m.logical, vertexID)
		m.met.Evictions.Inc()
	}
}

// PhysicalBytes returns the deduplicated bytes actually stored.
func (m *Manager) PhysicalBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.physical
}

// LogicalBytes returns the sum of artifact sizes as if stored without
// deduplication (the paper's "real size of the materialized artifacts",
// Figure 6, is this value for SA).
func (m *Manager) LogicalBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	for _, sz := range m.logical {
		n += sz
	}
	return n
}

// StoredIDs returns the vertex IDs with stored content.
func (m *Manager) StoredIDs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.frames)+len(m.blobs))
	for id := range m.frames {
		out = append(out, id)
	}
	for id := range m.blobs {
		out = append(out, id)
	}
	return out
}

// LoadCost returns the modeled retrieval cost Cl for a stored artifact of
// the given size under the manager's profile.
func (m *Manager) LoadCost(sizeBytes int64) float64 {
	return m.profile.LoadCost(sizeBytes).Seconds()
}

// Len returns the number of stored artifacts.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.frames) + len(m.blobs)
}
