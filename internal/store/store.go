// Package store implements the tiered artifact storage manager (§5.3): a
// content-addressed store that deduplicates dataset columns by their
// lineage IDs, so two artifacts sharing columns cost the shared bytes only
// once. Models and aggregates are stored as whole blobs.
//
// The manager holds two tiers. The memory tier serves artifacts at
// in-process speed and has a configurable byte budget; under pressure, cold
// artifacts are *demoted* to the durable disk tier (internal/tier) instead
// of being dropped, and promoted back on access. True eviction happens only
// from disk (or when no disk tier is attached). The tiers are inclusive: a
// promoted artifact keeps its disk copy, so re-demotion is a metadata-only
// drop and a crash never loses demoted work. See DESIGN.md "Tiered
// storage".
package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/tier"
)

// Tier identifies which storage tier holds (or served) an artifact.
type Tier int

const (
	// TierNone: the artifact is not stored.
	TierNone Tier = iota
	// TierMemory: resident in the in-process memory tier.
	TierMemory
	// TierDisk: resident only in the durable disk tier.
	TierDisk
)

// String returns the tier label used in metrics, trace spans, and the
// X-Collab-Tier transfer header.
func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	default:
		return "none"
	}
}

// Metrics holds the manager's optional observability counters. All fields
// are nil-safe (see internal/obs): an uninstrumented manager pays only a
// nil check per operation.
type Metrics struct {
	// GetHits / GetMisses count lookups by outcome (any tier).
	GetHits, GetMisses *obs.Counter
	// DiskHits counts lookups served by the disk tier (subset of GetHits).
	DiskHits *obs.Counter
	// Puts counts artifacts admitted (no-op re-puts excluded).
	Puts *obs.Counter
	// Evictions counts artifacts removed entirely (all tiers).
	Evictions *obs.Counter
	// Demotions counts artifacts moved memory → disk under budget
	// pressure or idle sweeps.
	Demotions *obs.Counter
	// Promotions counts artifacts copied disk → memory on access.
	Promotions *obs.Counter
	// DiskEvictions counts artifacts dropped from the disk tier by its
	// budget (true eviction of cold data).
	DiskEvictions *obs.Counter
	// ChecksumFailures counts disk reads rejected by checksum or decode
	// verification (the offending files are quarantined).
	ChecksumFailures *obs.Counter
	// BytesFetched accumulates the logical size of artifacts served by Get.
	BytesFetched *obs.Counter
	// LockWait accounts time callers queued on the manager's write lock
	// (Put, GetTiered, Evict, Demote, DemoteIdle, FlushToDisk) — the
	// eviction/admission serialization point under concurrent clients.
	LockWait *obs.Histogram
	// Trace, when non-nil, receives a "lock-wait:store" span (cat "lock")
	// for each write-lock wait above lockWaitSpanThreshold, feeding the
	// critical-path analyzer.
	Trace *obs.Trace
}

// lockWaitSpanThreshold gates lock-wait trace spans: uncontended
// acquisitions must not flood the trace buffer. The histogram sees every
// acquisition regardless.
const lockWaitSpanThreshold = 100 * time.Microsecond

type colEntry struct {
	col  *data.Column
	refs int
}

type manifest struct {
	colIDs []string
	names  []string
}

// Options configures the tiered manager beyond the memory profile.
type Options struct {
	// MemoryBudget bounds the memory tier's deduplicated bytes; exceeding
	// it demotes cold artifacts to disk (or hard-evicts them when no disk
	// tier is attached). 0 means unbounded.
	MemoryBudget int64
	// Disk attaches the durable tier; nil keeps the manager memory-only.
	Disk *tier.Disk
	// DiskProfile is the load-cost profile priced for disk-tier artifacts
	// (defaults to cost.Disk() when a disk tier is attached).
	DiskProfile cost.Profile
	// DiskBudget bounds the disk tier's bytes; exceeding it evicts the
	// coldest disk artifacts for real. 0 means unbounded.
	DiskBudget int64
}

// Manager stores artifact content for materialized Experiment Graph
// vertices. It is safe for concurrent use.
type Manager struct {
	mu          sync.RWMutex
	profile     cost.Profile // memory-tier load costs
	diskProfile cost.Profile // disk-tier load costs
	memBudget   int64
	diskBudget  int64
	disk        *tier.Disk

	cols   map[string]*colEntry
	frames map[string]manifest
	blobs  map[string]graph.Artifact
	// blobSizes caches blob sizes so physical accounting is O(1).
	blobSizes map[string]int64
	physical  int64 // memory-tier deduplicated bytes
	logical   map[string]int64

	// lastUse orders artifacts for LRU demotion/eviction (a logical clock:
	// deterministic under any timer resolution); lastTouch supports
	// wall-clock idle sweeps. Both cover every stored id, either tier.
	lastUse   map[string]uint64
	lastTouch map[string]time.Time
	clock     uint64

	met Metrics

	// ledger receives one event per residency transition (materialized,
	// promoted, demoted, evicted, quarantined, recovered) when attached.
	// An atomic pointer, not a Metrics field: transitions fire inside
	// locked sections on the hot path, and the detached state must cost
	// exactly one pointer load (pinned by BenchmarkLedgerOverhead).
	ledger atomic.Pointer[obs.ArtifactLedger]
}

// Instrument installs observability counters on the manager; the zero
// Metrics value (all nil) returns it to the uninstrumented state.
func (m *Manager) Instrument(met Metrics) {
	m.mu.Lock()
	m.met = met
	m.mu.Unlock()
}

// RentHorizonSeconds is the pricing window for artifact storage rent: one
// rent horizon of residency in a tier is charged one bandwidth-priced load
// of the artifact's bytes from that tier. The horizon keeps rent
// commensurate with the load-time savings it is weighed against — an
// artifact that cannot save one tier-load's worth of time per minute of
// residency is paying more than it earns (ROADMAP item 4's eviction
// signal).
const RentHorizonSeconds = 60

// RentRate converts a tier's cost profile into the ledger's rent price:
// seconds of rent per byte-second of residency. A profile without
// bandwidth (unpriceable tier) rents for free.
func RentRate(p cost.Profile) float64 {
	if p.BytesPerSecond <= 0 {
		return 0
	}
	return 1 / (p.BytesPerSecond * RentHorizonSeconds)
}

// AttachLedger connects the artifact lifecycle ledger: rent rates are
// derived from the manager's tier profiles, ledger entries are seeded for
// already-stored artifacts (memory residents as materialized, disk-only
// residents as recovered — after a crash the durable tier's survivors
// rebuild their entries, with pre-crash history gone), and every
// subsequent residency transition emits an event. nil detaches; the
// detached fast path is a single atomic pointer load.
func (m *Manager) AttachLedger(led *obs.ArtifactLedger) {
	if led != nil {
		led.SetRentRate(TierMemory.String(), RentRate(m.profile))
		led.SetRentRate(TierDisk.String(), RentRate(m.diskProfile))
		m.mu.RLock()
		mem := make([]string, 0, len(m.frames)+len(m.blobs))
		for id := range m.frames {
			mem = append(mem, id)
		}
		for id := range m.blobs {
			mem = append(mem, id)
		}
		sort.Strings(mem)
		var rec []string
		if m.disk != nil {
			for _, id := range m.disk.StoredIDs() {
				if _, f := m.frames[id]; f {
					continue
				}
				if _, b := m.blobs[id]; b {
					continue
				}
				rec = append(rec, id)
			}
			sort.Strings(rec)
		}
		for _, id := range mem {
			led.Event(id, obs.ArtifactMaterialized, TierMemory.String(), m.logical[id], "")
		}
		for _, id := range rec {
			led.Event(id, obs.ArtifactRecovered, TierDisk.String(), m.disk.LogicalSize(id), "")
		}
		m.mu.RUnlock()
	}
	m.ledger.Store(led)
}

// Ledger returns the attached artifact lifecycle ledger, or nil.
func (m *Manager) Ledger() *obs.ArtifactLedger { return m.ledger.Load() }

// lockWrite acquires the manager's write lock, accounting the queue wait.
// m.met is guarded by the lock itself, so the observation necessarily
// happens after acquisition — the measured wait is unaffected.
func (m *Manager) lockWrite() {
	sw := obs.StartTimer()
	m.mu.Lock()
	wait := sw.Elapsed()
	if m.met.LockWait != nil {
		m.met.LockWait.Observe(wait.Seconds())
	}
	if m.met.Trace != nil && wait >= lockWaitSpanThreshold {
		m.met.Trace.Span("lock-wait:store", "lock", 0, sw.StartedAt(), wait, nil)
	}
}

// New returns an empty memory-only storage manager with the given load-cost
// profile and no budget.
func New(profile cost.Profile) *Manager {
	return NewTiered(profile, Options{})
}

// NewTiered returns an empty manager with the given memory-tier profile and
// tiering options.
func NewTiered(profile cost.Profile, opts Options) *Manager {
	dp := opts.DiskProfile
	if dp.Name == "" {
		dp = cost.Disk()
	}
	return &Manager{
		profile:     profile,
		diskProfile: dp,
		memBudget:   opts.MemoryBudget,
		diskBudget:  opts.DiskBudget,
		disk:        opts.Disk,
		cols:        make(map[string]*colEntry),
		frames:      make(map[string]manifest),
		blobs:       make(map[string]graph.Artifact),
		blobSizes:   make(map[string]int64),
		logical:     make(map[string]int64),
		lastUse:     make(map[string]uint64),
		lastTouch:   make(map[string]time.Time),
	}
}

// Profile returns the manager's memory-tier load-cost profile.
func (m *Manager) Profile() cost.Profile { return m.profile }

// TierProfile returns the load-cost profile of the given tier.
func (m *Manager) TierProfile(t Tier) cost.Profile {
	if t == TierDisk {
		return m.diskProfile
	}
	return m.profile
}

// Disk returns the attached disk tier, or nil for a memory-only manager.
func (m *Manager) Disk() *tier.Disk { return m.disk }

// touchLocked stamps an artifact's LRU position.
func (m *Manager) touchLocked(vertexID string) {
	m.clock++
	m.lastUse[vertexID] = m.clock
	m.lastTouch[vertexID] = obs.Timestamp()
}

// Put stores the artifact content for a vertex in the memory tier. Dataset
// artifacts are decomposed into deduplicated columns; other artifacts are
// stored whole. Putting an already-present vertex (either tier) is a no-op.
// If the memory budget is exceeded, the coldest artifacts are demoted to
// the disk tier before Put returns.
func (m *Manager) Put(vertexID string, a graph.Artifact) error {
	return m.PutReq(vertexID, a, "")
}

// PutReq is Put carrying the request ID that caused the materialization,
// recorded on the ledger's materialized event so an artifact's lifecycle
// can be traced back to the run that created it.
func (m *Manager) PutReq(vertexID string, a graph.Artifact, requestID string) error {
	if a == nil {
		return fmt.Errorf("store: nil artifact for %s", vertexID)
	}
	m.lockWrite()
	defer m.mu.Unlock()
	if m.hasLocked(vertexID) {
		return nil
	}
	m.met.Puts.Inc()
	m.admitLocked(vertexID, a)
	m.touchLocked(vertexID)
	if led := m.ledger.Load(); led != nil {
		led.Event(vertexID, obs.ArtifactMaterialized, TierMemory.String(), m.logical[vertexID], requestID)
	}
	m.enforceBudgetsLocked()
	return nil
}

// admitLocked inserts content into the memory-tier maps (no budget check,
// no touch).
func (m *Manager) admitLocked(vertexID string, a graph.Artifact) {
	if ds, ok := a.(*graph.DatasetArtifact); ok && ds.Frame != nil {
		man := manifest{}
		for _, c := range ds.Frame.Columns() {
			man.colIDs = append(man.colIDs, c.ID)
			man.names = append(man.names, c.Name)
			if e, exists := m.cols[c.ID]; exists {
				e.refs++
			} else {
				m.cols[c.ID] = &colEntry{col: c, refs: 1}
				m.physical += c.SizeBytes()
			}
		}
		m.frames[vertexID] = man
		m.logical[vertexID] = ds.SizeBytes()
		return
	}
	m.blobs[vertexID] = a
	sz := a.SizeBytes()
	m.blobSizes[vertexID] = sz
	m.physical += sz
	m.logical[vertexID] = sz
}

// getMemoryLocked reassembles a memory-resident artifact, or nil.
func (m *Manager) getMemoryLocked(vertexID string) graph.Artifact {
	if man, ok := m.frames[vertexID]; ok {
		cols := make([]*data.Column, 0, len(man.colIDs))
		for i, id := range man.colIDs {
			e, exists := m.cols[id]
			if !exists {
				return nil // torn entry; treat as absent
			}
			c := e.col
			if c.Name != man.names[i] {
				c = c.WithID(c.ID)
				c.Name = man.names[i]
			}
			cols = append(cols, c)
		}
		f, err := data.NewFrame(cols...)
		if err != nil {
			return nil
		}
		return &graph.DatasetArtifact{Frame: f}
	}
	return m.blobs[vertexID]
}

// getDiskLocked reads an artifact from the disk tier, counting checksum
// failures (the tier quarantines the offending file itself).
func (m *Manager) getDiskLocked(vertexID string) graph.Artifact {
	if m.disk == nil {
		return nil
	}
	a, err := m.disk.Get(vertexID)
	if err != nil {
		m.met.ChecksumFailures.Inc()
		if led := m.ledger.Load(); led != nil {
			led.Event(vertexID, obs.ArtifactQuarantined, TierDisk.String(), 0, "")
		}
		return nil
	}
	return a
}

// Get retrieves the artifact content for a vertex, or nil if absent.
// Dataset artifacts are reassembled from the column store; the returned
// frame shares the stored column arrays (in-memory EG semantics). A
// disk-tier hit promotes the artifact back into the memory tier.
func (m *Manager) Get(vertexID string) graph.Artifact {
	a, _ := m.GetTiered(vertexID)
	return a
}

// GetTiered is Get reporting which tier served the artifact, so callers
// (the executor's fetch path, the reuse planner's cost model) can price and
// tag the access with the artifact's actual location.
func (m *Manager) GetTiered(vertexID string) (graph.Artifact, Tier) {
	return m.GetTieredReq(vertexID, "")
}

// GetTieredReq is GetTiered carrying the request ID whose plan triggered
// the fetch, so a promote event on the ledger names the run that pulled
// the artifact back into memory.
func (m *Manager) GetTieredReq(vertexID, requestID string) (graph.Artifact, Tier) {
	m.lockWrite()
	defer m.mu.Unlock()
	if a := m.getMemoryLocked(vertexID); a != nil {
		m.met.GetHits.Inc()
		m.met.BytesFetched.Add(m.logical[vertexID])
		m.touchLocked(vertexID)
		return a, TierMemory
	}
	if a := m.getDiskLocked(vertexID); a != nil {
		m.met.GetHits.Inc()
		m.met.DiskHits.Inc()
		// Promote: copy up into the memory tier (the disk copy remains, so
		// a later demotion is a metadata-only drop).
		m.admitLocked(vertexID, a)
		m.met.Promotions.Inc()
		if led := m.ledger.Load(); led != nil {
			led.Event(vertexID, obs.ArtifactPromoted, TierMemory.String(), m.logical[vertexID], requestID)
		}
		m.met.BytesFetched.Add(m.logical[vertexID])
		m.touchLocked(vertexID)
		m.enforceBudgetsLocked()
		return a, TierDisk
	}
	m.met.GetMisses.Inc()
	return nil, TierNone
}

// Peek returns the artifact without promoting it or disturbing the LRU
// order: the snapshotter and remote artifact transfers read through Peek so
// serving a cold artifact to a collaborator does not displace the hot set.
func (m *Manager) Peek(vertexID string) (graph.Artifact, Tier) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if a := m.getMemoryLocked(vertexID); a != nil {
		return a, TierMemory
	}
	if a := m.getDiskLocked(vertexID); a != nil {
		return a, TierDisk
	}
	return nil, TierNone
}

// TierOf reports where the vertex's content currently resides. Memory wins
// when both tiers hold a copy.
func (m *Manager) TierOf(vertexID string) Tier {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.tierOfLocked(vertexID)
}

func (m *Manager) tierOfLocked(vertexID string) Tier {
	if _, ok := m.frames[vertexID]; ok {
		return TierMemory
	}
	if _, ok := m.blobs[vertexID]; ok {
		return TierMemory
	}
	if m.disk != nil && m.disk.Has(vertexID) {
		return TierDisk
	}
	return TierNone
}

// Has reports whether the vertex's content is stored in any tier.
func (m *Manager) Has(vertexID string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.hasLocked(vertexID)
}

func (m *Manager) hasLocked(vertexID string) bool {
	return m.tierOfLocked(vertexID) != TierNone
}

// dropMemoryLocked removes a vertex from the memory-tier maps, releasing
// column references. Reports whether anything was removed.
func (m *Manager) dropMemoryLocked(vertexID string) bool {
	if man, ok := m.frames[vertexID]; ok {
		for _, id := range man.colIDs {
			e := m.cols[id]
			if e == nil {
				continue
			}
			e.refs--
			if e.refs <= 0 {
				m.physical -= e.col.SizeBytes()
				delete(m.cols, id)
			}
		}
		delete(m.frames, vertexID)
		delete(m.logical, vertexID)
		return true
	}
	if _, ok := m.blobs[vertexID]; ok {
		m.physical -= m.blobSizes[vertexID]
		delete(m.blobs, vertexID)
		delete(m.blobSizes, vertexID)
		delete(m.logical, vertexID)
		return true
	}
	return false
}

// Evict removes a vertex's content from every tier (true eviction),
// releasing column references and reclaiming physical space for columns no
// longer referenced.
func (m *Manager) Evict(vertexID string) {
	m.lockWrite()
	defer m.mu.Unlock()
	sz := m.logical[vertexID]
	dropped := m.dropMemoryLocked(vertexID)
	if m.disk != nil && m.disk.Has(vertexID) {
		if sz == 0 {
			sz = m.disk.LogicalSize(vertexID)
		}
		m.disk.Evict(vertexID)
		dropped = true
	}
	if dropped {
		delete(m.lastUse, vertexID)
		delete(m.lastTouch, vertexID)
		m.met.Evictions.Inc()
		if led := m.ledger.Load(); led != nil {
			// Empty tier: the artifact left every tier it occupied.
			led.Event(vertexID, obs.ArtifactEvicted, "", sz, "")
		}
	}
}

// demoteLocked moves a memory-resident artifact to the disk tier: content
// is spilled (skipped when the inclusive disk copy already exists) and the
// memory copy dropped. The artifact stays loadable — Has, Get, and the
// planner's cost model all keep seeing it, at disk cost.
func (m *Manager) demoteLocked(vertexID string) error {
	if m.disk == nil {
		return fmt.Errorf("store: no disk tier to demote %s to", vertexID)
	}
	// Captured before dropMemoryLocked deletes the logical entry; the
	// ledger's demoted event needs the artifact size.
	sz := m.logical[vertexID]
	if man, ok := m.frames[vertexID]; ok {
		if !m.disk.Has(vertexID) {
			cols := make([]*data.Column, len(man.colIDs))
			for i, id := range man.colIDs {
				e := m.cols[id]
				if e == nil {
					return fmt.Errorf("store: torn entry %s, cannot demote %s", id, vertexID)
				}
				c := e.col
				if c.Name != man.names[i] {
					c = c.WithID(c.ID)
					c.Name = man.names[i]
				}
				cols[i] = c
			}
			if err := m.disk.PutFrame(vertexID, cols); err != nil {
				return err
			}
		}
		m.dropMemoryLocked(vertexID)
		m.met.Demotions.Inc()
		if led := m.ledger.Load(); led != nil {
			led.Event(vertexID, obs.ArtifactDemoted, TierDisk.String(), sz, "")
		}
		return nil
	}
	if b, ok := m.blobs[vertexID]; ok {
		if !m.disk.Has(vertexID) {
			if err := m.disk.PutBlob(vertexID, b); err != nil {
				return err
			}
		}
		m.dropMemoryLocked(vertexID)
		m.met.Demotions.Inc()
		if led := m.ledger.Load(); led != nil {
			led.Event(vertexID, obs.ArtifactDemoted, TierDisk.String(), sz, "")
		}
		return nil
	}
	return fmt.Errorf("store: %s is not memory-resident", vertexID)
}

// Demote explicitly moves a vertex's content from the memory tier to the
// disk tier.
func (m *Manager) Demote(vertexID string) error {
	m.lockWrite()
	defer m.mu.Unlock()
	return m.demoteLocked(vertexID)
}

// coldestLocked returns the memory-resident vertex with the oldest LRU
// stamp, or "" when the memory tier is empty.
func (m *Manager) coldestLocked() string {
	victim, best := "", uint64(0)
	pick := func(id string) {
		u := m.lastUse[id]
		if victim == "" || u < best {
			victim, best = id, u
		}
	}
	for id := range m.frames {
		pick(id)
	}
	for id := range m.blobs {
		pick(id)
	}
	return victim
}

// enforceBudgetsLocked demotes the coldest memory artifacts until the
// memory tier fits its budget (hard-evicting when demotion is impossible),
// then evicts the coldest disk artifacts until the disk tier fits its
// budget. Deterministic: victims are selected by logical-clock LRU order.
func (m *Manager) enforceBudgetsLocked() {
	if m.memBudget > 0 {
		for m.physical > m.memBudget {
			victim := m.coldestLocked()
			if victim == "" {
				break
			}
			if err := m.demoteLocked(victim); err != nil {
				// No disk tier or spill failure: fall back to dropping the
				// artifact so the budget still holds.
				sz := m.logical[victim]
				m.dropMemoryLocked(victim)
				delete(m.lastUse, victim)
				delete(m.lastTouch, victim)
				m.met.Evictions.Inc()
				if led := m.ledger.Load(); led != nil {
					led.Event(victim, obs.ArtifactEvicted, TierMemory.String(), sz, "")
				}
			}
		}
	}
	if m.disk != nil && m.diskBudget > 0 {
		for m.disk.PhysicalBytes() > m.diskBudget {
			victim, best := "", uint64(0)
			for _, id := range m.disk.StoredIDs() {
				u := m.lastUse[id]
				if victim == "" || u < best {
					victim, best = id, u
				}
			}
			if victim == "" {
				break
			}
			sz := m.disk.LogicalSize(victim)
			m.disk.Evict(victim)
			m.met.DiskEvictions.Inc()
			if led := m.ledger.Load(); led != nil {
				led.Event(victim, obs.ArtifactEvicted, TierDisk.String(), sz, "")
			}
			if m.tierOfLocked(victim) == TierNone {
				delete(m.lastUse, victim)
				delete(m.lastTouch, victim)
			}
		}
	}
}

// DemoteIdle demotes every memory-resident artifact whose last access is
// older than the cutoff. It is the background-demotion entry point: collabd
// runs it on a timer so long-idle artifacts drain to disk even without
// budget pressure. Returns how many artifacts were demoted.
func (m *Manager) DemoteIdle(olderThan time.Duration) int {
	m.lockWrite()
	defer m.mu.Unlock()
	if m.disk == nil {
		return 0
	}
	cutoff := obs.Timestamp().Add(-olderThan)
	var victims []string
	for id := range m.frames {
		if m.lastTouch[id].Before(cutoff) {
			victims = append(victims, id)
		}
	}
	for id := range m.blobs {
		if m.lastTouch[id].Before(cutoff) {
			victims = append(victims, id)
		}
	}
	n := 0
	for _, id := range victims {
		if m.demoteLocked(id) == nil {
			n++
		}
	}
	return n
}

// FlushToDisk demotes every memory-resident artifact, so all content is
// durable on the disk tier (used at graceful shutdown of a persistent
// store). Returns the first error, continuing past failures.
func (m *Manager) FlushToDisk() error {
	m.lockWrite()
	defer m.mu.Unlock()
	if m.disk == nil {
		return fmt.Errorf("store: no disk tier attached")
	}
	ids := make([]string, 0, len(m.frames)+len(m.blobs))
	for id := range m.frames {
		ids = append(ids, id)
	}
	for id := range m.blobs {
		ids = append(ids, id)
	}
	var first error
	for _, id := range ids {
		if err := m.demoteLocked(id); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MemoryBytes returns the deduplicated bytes resident in the memory tier.
func (m *Manager) MemoryBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.physical
}

// DiskBytes returns the deduplicated bytes resident in the disk tier, 0
// for a memory-only manager.
func (m *Manager) DiskBytes() int64 {
	if m.disk == nil {
		return 0
	}
	return m.disk.PhysicalBytes()
}

// TierCounts reports how many artifacts each tier currently holds. The
// tiers are inclusive, so an artifact resident in both counts in both —
// memory+disk can exceed Len().
func (m *Manager) TierCounts() (memory, disk int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	memory = len(m.frames) + len(m.blobs)
	if m.disk != nil {
		disk = m.disk.Len()
	}
	return memory, disk
}

// PhysicalBytes returns the deduplicated bytes in the memory tier (the
// paper's single-tier accounting; per-tier figures are MemoryBytes and
// DiskBytes).
func (m *Manager) PhysicalBytes() int64 { return m.MemoryBytes() }

// LogicalBytes returns the sum of stored artifact sizes as if stored
// without deduplication across both tiers (the paper's "real size of the
// materialized artifacts", Figure 6, is this value for SA). Artifacts
// resident in both tiers count once.
func (m *Manager) LogicalBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	for _, sz := range m.logical {
		n += sz
	}
	if m.disk != nil {
		for _, id := range m.disk.StoredIDs() {
			if _, inMem := m.logical[id]; !inMem {
				n += m.disk.LogicalSize(id)
			}
		}
	}
	return n
}

// StoredIDs returns the vertex IDs with stored content in any tier.
func (m *Manager) StoredIDs() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.frames)+len(m.blobs))
	for id := range m.frames {
		out = append(out, id)
	}
	for id := range m.blobs {
		out = append(out, id)
	}
	if m.disk != nil {
		for _, id := range m.disk.StoredIDs() {
			if _, f := m.frames[id]; f {
				continue
			}
			if _, b := m.blobs[id]; b {
				continue
			}
			out = append(out, id)
		}
	}
	return out
}

// LoadCost returns the modeled retrieval cost Cl for an artifact of the
// given size under the memory-tier profile (location-blind; prefer
// LoadCostFor when the artifact's vertex ID is known).
func (m *Manager) LoadCost(sizeBytes int64) float64 {
	return m.profile.LoadCost(sizeBytes).Seconds()
}

// LoadCostFor returns the modeled retrieval cost Cl in seconds for the
// vertex's artifact, priced with the profile of the tier that actually
// holds it — the paper's Cl(v) adapted per artifact location rather than
// per deployment. Unstored vertices are priced at memory cost (the
// caller's guard, st.Has, decides loadability).
func (m *Manager) LoadCostFor(vertexID string, sizeBytes int64) float64 {
	return m.TierProfile(m.TierOf(vertexID)).LoadCost(sizeBytes).Seconds()
}

// Len returns the number of stored artifacts across tiers.
func (m *Manager) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := len(m.frames) + len(m.blobs)
	if m.disk != nil {
		for _, id := range m.disk.StoredIDs() {
			if _, f := m.frames[id]; f {
				continue
			}
			if _, b := m.blobs[id]; b {
				continue
			}
			n++
		}
	}
	return n
}
