package store

import (
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/obs"
)

// TestLockWriteAccounting verifies the manager's write-lock wait
// instrumentation: every write-path acquisition observes the wait
// histogram, and a wait above the span threshold lands a lock-wait span on
// the attached trace.
func TestLockWriteAccounting(t *testing.T) {
	m := New(cost.Memory())
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	hist := reg.Histogram("collab_store_lock_wait_seconds", "test", nil)
	m.Instrument(Metrics{LockWait: hist, Trace: tr})

	if err := m.Put("v1", &graph.ModelArtifact{Quality: 0.5}); err != nil {
		t.Fatal(err)
	}
	if hist.Count() != 1 {
		t.Fatalf("uncontended Put observed %d waits, want 1", hist.Count())
	}
	if tr.Len() != 0 {
		t.Fatal("uncontended acquisition emitted a trace span below the threshold")
	}

	// Hold the write lock so a concurrent Put queues past the threshold.
	m.mu.Lock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = m.Put("v2", &graph.ModelArtifact{Quality: 0.7})
	}()
	time.Sleep(5 * time.Millisecond)
	m.mu.Unlock()
	<-done

	if hist.Count() != 2 {
		t.Fatalf("contended Put did not observe the wait histogram: count %d", hist.Count())
	}
	if hist.Sum() < 0.001 {
		t.Fatalf("wait sum = %v s, want >= 1ms (lock was held 5ms)", hist.Sum())
	}
	var found bool
	for _, ev := range tr.Events() {
		if ev.Name == "lock-wait:store" && ev.Cat == "lock" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no lock-wait:store span after a 5ms wait; events: %+v", tr.Events())
	}
}
