package store

import (
	"fmt"
	"testing"

	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/graph"
	"repro/internal/ml"
	"repro/internal/tier"
)

func benchFrame(id string, rows int) *graph.DatasetArtifact {
	vals := make([]float64, rows)
	for i := range vals {
		vals[i] = float64(i)
	}
	return &graph.DatasetArtifact{
		Frame: data.MustNewFrame(
			data.NewFloatColumn(id+"-a", vals),
			data.NewFloatColumn(id+"-b", vals),
		),
	}
}

// BenchmarkDemote measures spilling a 2-column frame to the disk tier
// (codec encode + checksummed atomic writes + manifest).
func BenchmarkDemote(b *testing.B) {
	for _, rows := range []int{1 << 10, 1 << 14} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			d, _, err := tier.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			m := NewTiered(cost.Memory(), Options{Disk: d})
			a := benchFrame("v", rows)
			b.SetBytes(a.SizeBytes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Put("v", a); err != nil {
					b.Fatal(err)
				}
				if err := m.Demote("v"); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				m.Evict("v") // clear both tiers so the next spill is real
				b.StartTimer()
			}
		})
	}
}

// BenchmarkPromote measures a disk-tier Get: checksum verification + codec
// decode + reassembly + memory-tier admission.
func BenchmarkPromote(b *testing.B) {
	for _, rows := range []int{1 << 10, 1 << 14} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			d, _, err := tier.Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			m := NewTiered(cost.Memory(), Options{Disk: d})
			a := benchFrame("v", rows)
			if err := m.Put("v", a); err != nil {
				b.Fatal(err)
			}
			if err := m.Demote("v"); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(a.SizeBytes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got, tr := m.GetTiered("v")
				if got == nil || tr != TierDisk {
					b.Fatalf("want disk hit, got %v", tr)
				}
				b.StopTimer()
				// Inclusive tiers: drop the memory copy only (disk copy
				// remains), so every iteration is a true disk fetch.
				if err := m.Demote("v"); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkDiskFetchVsRecompute contrasts loading a materialized artifact
// from the disk tier against recomputing it (the planner's Cl_disk(v) vs
// Cr(v) decision): the "recompute" arm rebuilds the same frame from raw
// values, modeling a cheap derivation.
func BenchmarkDiskFetchVsRecompute(b *testing.B) {
	const rows = 1 << 14
	b.Run("disk-fetch", func(b *testing.B) {
		d, _, err := tier.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		m := NewTiered(cost.Memory(), Options{Disk: d})
		if err := m.Put("v", benchFrame("v", rows)); err != nil {
			b.Fatal(err)
		}
		if err := m.Demote("v"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got, tr := m.GetTiered("v")
			if got == nil || tr != TierDisk {
				b.Fatalf("want disk hit, got %v", tr)
			}
			b.StopTimer()
			if err := m.Demote("v"); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})
	b.Run("recompute-cheap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := benchFrame("v", rows)
			// Touch a value so the build isn't dead code.
			if a.Frame.Columns()[0].Floats[rows-1] != float64(rows-1) {
				b.Fatal("bad frame")
			}
		}
	})
	// The expensive derivation: retraining a model on the frame. This is the
	// side where Cl_disk(v) < Cr(v) and the planner loads from disk.
	b.Run("recompute-train", func(b *testing.B) {
		a := benchFrame("v", rows)
		x := make([][]float64, rows)
		y := make([]float64, rows)
		for i := range x {
			x[i] = []float64{a.Frame.Columns()[0].Floats[i]}
			y[i] = float64(i % 2)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := ml.NewLogisticRegression(1)
			if err := m.Fit(x, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}
