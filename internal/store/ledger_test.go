package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/tier"
)

func attachTestLedger(t *testing.T, m *Manager) *obs.ArtifactLedger {
	t.Helper()
	led := obs.NewArtifactLedger(32)
	now := time.Unix(1700000000, 0).UTC()
	led.SetClock(func() time.Time { return now })
	m.AttachLedger(led)
	return led
}

func eventKinds(led *obs.ArtifactLedger, id string) []string {
	recs := led.Snapshot(obs.ArtifactQuery{ID: id})
	if len(recs) != 1 {
		return nil
	}
	kinds := make([]string, 0, len(recs[0].Events))
	for _, ev := range recs[0].Events {
		kinds = append(kinds, ev.Kind)
	}
	return kinds
}

// TestLedgerTracksStoreLifecycle walks one artifact through every store
// transition and checks the ledger saw each as an event, with the request
// ID carried on the transitions a request drives.
func TestLedgerTracksStoreLifecycle(t *testing.T) {
	d := newDisk(t)
	m := NewTiered(cost.Memory(), Options{Disk: d})
	led := attachTestLedger(t, m)

	if err := m.PutReq("v1", floatArtifact("v1", 10), "req-put"); err != nil {
		t.Fatal(err)
	}
	if err := m.Demote("v1"); err != nil {
		t.Fatal(err)
	}
	// Disk hit promotes back to memory; the promoted event names the run.
	if a, tr := m.GetTieredReq("v1", "req-get"); a == nil || tr != TierDisk {
		t.Fatalf("GetTieredReq = %v, %v; want disk hit", a, tr)
	}
	m.Evict("v1")

	want := fmt.Sprint([]string{
		obs.ArtifactMaterialized, obs.ArtifactDemoted,
		obs.ArtifactPromoted, obs.ArtifactEvicted,
	})
	if got := fmt.Sprint(eventKinds(led, "v1")); got != want {
		t.Fatalf("event kinds = %v, want %v", got, want)
	}
	recs := led.Snapshot(obs.ArtifactQuery{ID: "v1"})
	evs := recs[0].Events
	if evs[0].RequestID != "req-put" || evs[2].RequestID != "req-get" {
		t.Fatalf("request IDs not threaded: %+v", evs)
	}
	if evs[0].Bytes != 80 || evs[1].Bytes != 80 {
		t.Fatalf("event bytes = %d/%d, want 80", evs[0].Bytes, evs[1].Bytes)
	}
	if recs[0].Tier != "none" {
		t.Fatalf("post-eviction tier = %q, want none", recs[0].Tier)
	}
}

// TestLedgerSeesBudgetPressure: demotions and hard evictions forced by
// budget enforcement show up as ledger events even though no caller asked
// for them.
func TestLedgerSeesBudgetPressure(t *testing.T) {
	d := newDisk(t)
	m := NewTiered(cost.Memory(), Options{MemoryBudget: 160, Disk: d})
	led := attachTestLedger(t, m)
	for _, id := range []string{"v1", "v2", "v3"} {
		if err := m.Put(id, floatArtifact(id, 10)); err != nil {
			t.Fatal(err)
		}
	}
	// v1 was coldest → demoted by the budget sweep.
	want := fmt.Sprint([]string{obs.ArtifactMaterialized, obs.ArtifactDemoted})
	if got := fmt.Sprint(eventKinds(led, "v1")); got != want {
		t.Fatalf("v1 events = %v, want %v", got, want)
	}
	if led.EventCount(obs.ArtifactDemoted) != 1 {
		t.Fatalf("demoted events = %d, want 1", led.EventCount(obs.ArtifactDemoted))
	}

	// Without a disk tier the same pressure hard-evicts instead.
	m2 := NewTiered(cost.Memory(), Options{MemoryBudget: 160})
	led2 := attachTestLedger(t, m2)
	for _, id := range []string{"v1", "v2", "v3"} {
		if err := m2.Put(id, floatArtifact(id, 10)); err != nil {
			t.Fatal(err)
		}
	}
	want = fmt.Sprint([]string{obs.ArtifactMaterialized, obs.ArtifactEvicted})
	if got := fmt.Sprint(eventKinds(led2, "v1")); got != want {
		t.Fatalf("v1 events = %v, want %v", got, want)
	}
}

// TestLedgerSeesIdleDemotion: DemoteIdle's spills are recorded too.
func TestLedgerSeesIdleDemotion(t *testing.T) {
	d := newDisk(t)
	m := NewTiered(cost.Memory(), Options{Disk: d})
	led := attachTestLedger(t, m)
	if err := m.Put("v1", floatArtifact("v1", 10)); err != nil {
		t.Fatal(err)
	}
	if n := m.DemoteIdle(0); n != 1 {
		t.Fatalf("DemoteIdle = %d, want 1", n)
	}
	want := fmt.Sprint([]string{obs.ArtifactMaterialized, obs.ArtifactDemoted})
	if got := fmt.Sprint(eventKinds(led, "v1")); got != want {
		t.Fatalf("v1 events = %v, want %v", got, want)
	}
}

// TestLedgerRecoverySeeding: attaching a ledger to a store whose disk tier
// recovered prior content rebuilds ledger entries for the survivors as
// "recovered" events, so restart does not blind the economics.
func TestLedgerRecoverySeeding(t *testing.T) {
	dir := t.TempDir()
	d, _, err := tier.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewTiered(cost.Memory(), Options{Disk: d})
	if err := m.Put("v1", floatArtifact("v1", 10)); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushToDisk(); err != nil {
		t.Fatal(err)
	}

	// Simulated restart: reopen the tier, build a fresh manager, attach.
	d2, rep, err := tier.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != 1 {
		t.Fatalf("recovery report = %+v, want 1 frame", rep)
	}
	m2 := NewTiered(cost.Memory(), Options{Disk: d2})
	led := attachTestLedger(t, m2)
	want := fmt.Sprint([]string{obs.ArtifactRecovered})
	if got := fmt.Sprint(eventKinds(led, "v1")); got != want {
		t.Fatalf("v1 events after restart = %v, want %v", got, want)
	}
	recs := led.Snapshot(obs.ArtifactQuery{ID: "v1"})
	if recs[0].Tier != "disk" || recs[0].Bytes != d2.LogicalSize("v1") {
		t.Fatalf("recovered record = %+v", recs[0])
	}
	// Memory-resident content at attach time seeds as materialized.
	m3 := New(cost.Memory())
	if err := m3.Put("v2", floatArtifact("v2", 10)); err != nil {
		t.Fatal(err)
	}
	led3 := attachTestLedger(t, m3)
	want = fmt.Sprint([]string{obs.ArtifactMaterialized})
	if got := fmt.Sprint(eventKinds(led3, "v2")); got != want {
		t.Fatalf("v2 events after attach = %v, want %v", got, want)
	}
}

// TestLedgerQuarantineOnRuntimeCorruption: a disk fetch that trips checksum
// verification quarantines the artifact, the ledger records it, and the
// quarantined entry drops out of the economics totals.
func TestLedgerQuarantineOnRuntimeCorruption(t *testing.T) {
	dir := t.TempDir()
	d, _, err := tier.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewTiered(cost.Memory(), Options{Disk: d})
	led := attachTestLedger(t, m)
	if err := m.Put("m1", &graph.AggregateArtifact{Value: 7}); err != nil {
		t.Fatal(err)
	}
	if err := m.Demote("m1"); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored blob behind the tier's back.
	blobs, err := filepath.Glob(filepath.Join(dir, "blobs", "*"))
	if err != nil || len(blobs) != 1 {
		t.Fatalf("blob files = %v (%v)", blobs, err)
	}
	b, err := os.ReadFile(blobs[0])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(blobs[0], b, 0o644); err != nil {
		t.Fatal(err)
	}

	if a, tr := m.GetTiered("m1"); a != nil || tr != TierNone {
		t.Fatalf("GetTiered on corrupt artifact = %v, %v; want miss", a, tr)
	}
	want := fmt.Sprint([]string{
		obs.ArtifactMaterialized, obs.ArtifactDemoted, obs.ArtifactQuarantined,
	})
	if got := fmt.Sprint(eventKinds(led, "m1")); got != want {
		t.Fatalf("m1 events = %v, want %v", got, want)
	}
	recs := led.Snapshot(obs.ArtifactQuery{ID: "m1"})
	if !recs[0].Quarantined {
		t.Fatal("record not flagged quarantined")
	}
	tracked, _, _, _ := led.Totals()
	if tracked != 0 {
		t.Fatalf("totals track %d artifacts, want 0 (quarantined excluded)", tracked)
	}
}

func TestTierCountsInclusive(t *testing.T) {
	d := newDisk(t)
	m := NewTiered(cost.Memory(), Options{Disk: d})
	for _, id := range []string{"v1", "v2", "v3"} {
		if err := m.Put(id, floatArtifact(id, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Demote("v1"); err != nil {
		t.Fatal(err)
	}
	// Promote v1 back: inclusive tiers keep the disk copy, so it counts in
	// both tiers.
	if a, _ := m.GetTiered("v1"); a == nil {
		t.Fatal("v1 lost")
	}
	mem, disk := m.TierCounts()
	if mem != 3 || disk != 1 {
		t.Fatalf("TierCounts = %d/%d, want 3 memory, 1 disk", mem, disk)
	}
}

func TestRentRate(t *testing.T) {
	p := cost.Memory()
	want := 1 / (p.BytesPerSecond * RentHorizonSeconds)
	if got := RentRate(p); got != want {
		t.Fatalf("RentRate(memory) = %v, want %v", got, want)
	}
	if RentRate(cost.Profile{}) != 0 {
		t.Fatal("RentRate of a zero profile must be 0, not Inf")
	}
	// Slower tiers charge more rent per byte-second: holding bytes you
	// could cheaply re-load is cheap; holding bytes on slow media is not.
	if RentRate(cost.Disk()) <= RentRate(cost.Memory()) {
		t.Fatal("disk rent rate should exceed memory rent rate")
	}
}

// TestLedgerDetached: a store without a ledger runs every transition with
// no tracking and no panic, and AttachLedger(nil) detaches cleanly.
func TestLedgerDetached(t *testing.T) {
	d := newDisk(t)
	m := NewTiered(cost.Memory(), Options{Disk: d})
	if m.Ledger() != nil {
		t.Fatal("fresh manager should have no ledger")
	}
	if err := m.PutReq("v1", floatArtifact("v1", 10), "r"); err != nil {
		t.Fatal(err)
	}
	led := attachTestLedger(t, m)
	m.AttachLedger(nil)
	if m.Ledger() != nil {
		t.Fatal("AttachLedger(nil) should detach")
	}
	m.Evict("v1")
	if led.EventCount(obs.ArtifactEvicted) != 0 {
		t.Fatal("detached ledger still receiving events")
	}
}

// BenchmarkLedgerOverhead pins the ledger's cost on the store's hot write
// path. The "disabled" arm (no ledger attached) is the default
// configuration and must stay ≈ the pre-ledger baseline: its only cost is
// one atomic pointer load per transition. The "enabled" arm bounds the
// instrumented cost.
func BenchmarkLedgerOverhead(b *testing.B) {
	run := func(b *testing.B, m *Manager) {
		a := benchFrame("v", 1<<10)
		b.SetBytes(a.SizeBytes())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.PutReq("v", a, "req"); err != nil {
				b.Fatal(err)
			}
			if got, tr := m.GetTiered("v"); got == nil || tr != TierMemory {
				b.Fatalf("want memory hit, got %v", tr)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, NewTiered(cost.Memory(), Options{}))
	})
	b.Run("enabled", func(b *testing.B) {
		m := NewTiered(cost.Memory(), Options{})
		m.AttachLedger(obs.NewArtifactLedger(32))
		run(b, m)
	})
}
