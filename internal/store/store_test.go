package store

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/graph"
	"repro/internal/ml"
	"repro/internal/obs"
)

func newTestManager() *Manager { return New(cost.Memory()) }

func frames() (*graph.DatasetArtifact, *graph.DatasetArtifact) {
	shared := data.NewFloatColumn("x", []float64{1, 2, 3, 4}) // 32 bytes
	own := data.NewFloatColumn("y", []float64{5, 6, 7, 8})    // 32 bytes
	f1 := data.MustNewFrame(shared, own)
	f2 := data.MustNewFrame(shared)
	return &graph.DatasetArtifact{Frame: f1}, &graph.DatasetArtifact{Frame: f2}
}

func TestPutGetDataset(t *testing.T) {
	m := newTestManager()
	a, _ := frames()
	if err := m.Put("v1", a); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := m.Get("v1").(*graph.DatasetArtifact)
	if !ok {
		t.Fatalf("Get returned %T", m.Get("v1"))
	}
	if got.Frame.NumCols() != 2 || got.Frame.Column("x").Floats[2] != 3 {
		t.Errorf("roundtrip wrong: %v", got.Frame)
	}
	if got.Frame.Column("x").ID != a.Frame.Column("x").ID {
		t.Error("column IDs must survive the store")
	}
}

func TestColumnDeduplication(t *testing.T) {
	m := newTestManager()
	a, b := frames()
	if err := m.Put("v1", a); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("v2", b); err != nil {
		t.Fatal(err)
	}
	if m.PhysicalBytes() != 64 { // x + y once
		t.Errorf("physical=%d, want 64", m.PhysicalBytes())
	}
	if m.LogicalBytes() != 96 { // 64 + 32
		t.Errorf("logical=%d, want 96", m.LogicalBytes())
	}
}

func TestEvictReleasesOnlyUnreferencedColumns(t *testing.T) {
	m := newTestManager()
	a, b := frames()
	if err := m.Put("v1", a); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("v2", b); err != nil {
		t.Fatal(err)
	}
	m.Evict("v1")
	if m.Has("v1") {
		t.Error("v1 should be gone")
	}
	if !m.Has("v2") {
		t.Error("v2 must survive")
	}
	if m.PhysicalBytes() != 32 { // only shared x remains
		t.Errorf("physical=%d, want 32", m.PhysicalBytes())
	}
	got := m.Get("v2").(*graph.DatasetArtifact)
	if got.Frame.Column("x").Floats[0] != 1 {
		t.Error("shared column content corrupted by eviction")
	}
	m.Evict("v2")
	if m.PhysicalBytes() != 0 || m.Len() != 0 {
		t.Errorf("store not empty after evicting all: %d bytes, %d artifacts", m.PhysicalBytes(), m.Len())
	}
}

func TestPutIdempotent(t *testing.T) {
	m := newTestManager()
	a, _ := frames()
	if err := m.Put("v1", a); err != nil {
		t.Fatal(err)
	}
	before := m.PhysicalBytes()
	if err := m.Put("v1", a); err != nil {
		t.Fatal(err)
	}
	if m.PhysicalBytes() != before {
		t.Error("re-putting must not change accounting")
	}
}

func TestModelBlob(t *testing.T) {
	m := newTestManager()
	lr := ml.NewLogisticRegression(1)
	if err := lr.Fit([][]float64{{1}, {0}}, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	ma := &graph.ModelArtifact{Model: lr, Quality: 0.9, Features: []string{"x"}}
	if err := m.Put("m1", ma); err != nil {
		t.Fatal(err)
	}
	got, ok := m.Get("m1").(*graph.ModelArtifact)
	if !ok || got.Quality != 0.9 {
		t.Fatalf("model roundtrip wrong: %T", m.Get("m1"))
	}
	if m.PhysicalBytes() != ma.SizeBytes() {
		t.Errorf("physical=%d, want %d", m.PhysicalBytes(), ma.SizeBytes())
	}
	m.Evict("m1")
	if m.PhysicalBytes() != 0 {
		t.Errorf("physical=%d after evict, want 0", m.PhysicalBytes())
	}
}

func TestGetAbsent(t *testing.T) {
	m := newTestManager()
	if m.Get("nope") != nil {
		t.Error("absent Get should be nil")
	}
	if m.Has("nope") {
		t.Error("absent Has should be false")
	}
	m.Evict("nope") // must not panic
}

func TestPutNil(t *testing.T) {
	m := newTestManager()
	if err := m.Put("v", nil); err == nil {
		t.Error("Put(nil) should error")
	}
}

func TestLoadCostScalesWithSize(t *testing.T) {
	m := New(cost.Disk())
	small := m.LoadCost(1 << 10)
	big := m.LoadCost(1 << 30)
	if big <= small {
		t.Errorf("load cost should grow with size: small=%v big=%v", small, big)
	}
}

func TestRenamedSharedColumn(t *testing.T) {
	// Two artifacts share a column ID but use different display names;
	// the store must return each with its own name.
	m := newTestManager()
	col := data.NewFloatColumn("x", []float64{1, 2})
	renamed := col.WithID(col.ID)
	renamed.Name = "z"
	f1 := data.MustNewFrame(col)
	f2 := data.MustNewFrame(renamed)
	if err := m.Put("v1", &graph.DatasetArtifact{Frame: f1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("v2", &graph.DatasetArtifact{Frame: f2}); err != nil {
		t.Fatal(err)
	}
	if m.PhysicalBytes() != 16 {
		t.Errorf("physical=%d, want 16 (shared)", m.PhysicalBytes())
	}
	g2 := m.Get("v2").(*graph.DatasetArtifact)
	if !g2.Frame.HasColumn("z") {
		t.Errorf("renamed column lost: %v", g2.Frame.ColumnNames())
	}
}

func TestStoreMetricsCounters(t *testing.T) {
	m := New(cost.Memory())
	reg := obs.NewRegistry()
	met := Metrics{
		GetHits:      reg.Counter("hits_total", ""),
		GetMisses:    reg.Counter("misses_total", ""),
		Puts:         reg.Counter("puts_total", ""),
		Evictions:    reg.Counter("evictions_total", ""),
		BytesFetched: reg.Counter("fetched_bytes_total", ""),
	}
	m.Instrument(met)

	blob := &graph.ModelArtifact{Model: nil, Quality: 0.5}
	if err := m.Put("v1", blob); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("v1", blob); err != nil { // no-op re-put: not counted
		t.Fatal(err)
	}
	if met.Puts.Value() != 1 {
		t.Errorf("puts = %d, want 1 (re-put is a no-op)", met.Puts.Value())
	}
	if m.Get("v1") == nil {
		t.Fatal("stored blob should be retrievable")
	}
	if m.Get("absent") != nil {
		t.Fatal("unexpected artifact")
	}
	if met.GetHits.Value() != 1 || met.GetMisses.Value() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", met.GetHits.Value(), met.GetMisses.Value())
	}
	if met.BytesFetched.Value() != blob.SizeBytes() {
		t.Errorf("fetched bytes = %d, want %d", met.BytesFetched.Value(), blob.SizeBytes())
	}
	m.Evict("v1")
	m.Evict("v1") // double-evict: not counted
	if met.Evictions.Value() != 1 {
		t.Errorf("evictions = %d, want 1", met.Evictions.Value())
	}
}
