package store

import (
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/tier"
)

func newDisk(t *testing.T) *tier.Disk {
	t.Helper()
	d, _, err := tier.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func floatArtifact(name string, rows int) *graph.DatasetArtifact {
	return &graph.DatasetArtifact{
		Frame: data.MustNewFrame(data.NewFloatColumn(name, make([]float64, rows))),
	}
}

// TestBudgetDemotesColdestToDisk: exceeding the memory budget demotes LRU
// artifacts to disk instead of dropping them; they stay loadable and are
// promoted back on access.
func TestBudgetDemotesColdestToDisk(t *testing.T) {
	d := newDisk(t)
	// Each artifact is 10 floats = 80 bytes; budget fits two.
	m := NewTiered(cost.Memory(), Options{MemoryBudget: 160, Disk: d})
	var met struct{ dem, pro obs.Counter }
	m.Instrument(Metrics{Demotions: &met.dem, Promotions: &met.pro})

	for _, id := range []string{"v1", "v2", "v3"} {
		if err := m.Put(id, floatArtifact(id, 10)); err != nil {
			t.Fatal(err)
		}
	}
	// v1 is coldest → demoted; v2, v3 resident.
	if got := m.TierOf("v1"); got != TierDisk {
		t.Fatalf("v1 tier = %v, want disk", got)
	}
	if m.TierOf("v2") != TierMemory || m.TierOf("v3") != TierMemory {
		t.Fatal("v2/v3 should stay memory-resident")
	}
	if m.MemoryBytes() > 160 {
		t.Fatalf("memory tier over budget: %d", m.MemoryBytes())
	}
	if !m.Has("v1") {
		t.Fatal("demotion must not lose the artifact")
	}
	if met.dem.Value() != 1 {
		t.Fatalf("demotions = %d, want 1", met.dem.Value())
	}

	// Access v1: served from disk, promoted back; now v2 is coldest and
	// gets demoted in turn.
	a, tr := m.GetTiered("v1")
	if a == nil || tr != TierDisk {
		t.Fatalf("GetTiered(v1) = %v, %v; want disk hit", a, tr)
	}
	if m.TierOf("v1") != TierMemory {
		t.Fatal("v1 not promoted")
	}
	if m.TierOf("v2") != TierDisk {
		t.Fatalf("v2 tier = %v, want disk (displaced by promotion)", m.TierOf("v2"))
	}
	if met.pro.Value() != 1 {
		t.Fatalf("promotions = %d, want 1", met.pro.Value())
	}
	// Inclusive tiers: v1's disk copy remains, so re-demoting it writes
	// nothing new and the disk tier still dedups the shared bytes.
	if d.Has("v1") != true {
		t.Fatal("promotion dropped the disk copy")
	}
}

// TestBudgetWithoutDiskHardEvicts: a memory budget with no disk tier falls
// back to true eviction (the pre-tiering behavior).
func TestBudgetWithoutDiskHardEvicts(t *testing.T) {
	m := NewTiered(cost.Memory(), Options{MemoryBudget: 160})
	for _, id := range []string{"v1", "v2", "v3"} {
		if err := m.Put(id, floatArtifact(id, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Has("v1") {
		t.Fatal("v1 should be evicted (no disk tier)")
	}
	if !m.Has("v2") || !m.Has("v3") {
		t.Fatal("v2/v3 should survive")
	}
}

// TestDiskBudgetEvictsForReal: the disk tier's budget truly evicts the
// coldest artifacts — the only place data is lost, by design.
func TestDiskBudgetEvictsForReal(t *testing.T) {
	d := newDisk(t)
	m := NewTiered(cost.Memory(), Options{MemoryBudget: 80, Disk: d, DiskBudget: 160})
	var evict obs.Counter
	m.Instrument(Metrics{DiskEvictions: &evict})
	for _, id := range []string{"v1", "v2", "v3", "v4"} {
		if err := m.Put(id, floatArtifact(id, 10)); err != nil {
			t.Fatal(err)
		}
	}
	// Memory holds v4; disk can hold two of v1..v3 → v1 evicted for real.
	if m.Has("v1") {
		t.Fatal("v1 should be gone (disk budget)")
	}
	if !m.Has("v2") || !m.Has("v3") || !m.Has("v4") {
		t.Fatal("newer artifacts should survive")
	}
	if evict.Value() != 1 {
		t.Fatalf("disk evictions = %d, want 1", evict.Value())
	}
}

// TestEvictRemovesAllTiers: the materializer's deselection eviction clears
// both the memory and the disk copy.
func TestEvictRemovesAllTiers(t *testing.T) {
	d := newDisk(t)
	m := NewTiered(cost.Memory(), Options{Disk: d})
	if err := m.Put("v1", floatArtifact("v1", 10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Demote("v1"); err != nil {
		t.Fatal(err)
	}
	if _, tr := m.GetTiered("v1"); tr != TierDisk {
		t.Fatal("setup: v1 should be served from disk")
	}
	// Now in both tiers (inclusive). Evict must clear both.
	m.Evict("v1")
	if m.Has("v1") || d.Has("v1") {
		t.Fatal("Evict left a copy behind")
	}
}

// TestLoadCostForPricesActualTier: Cl(v) uses the profile of the tier the
// artifact actually occupies.
func TestLoadCostForPricesActualTier(t *testing.T) {
	d := newDisk(t)
	m := NewTiered(cost.Memory(), Options{Disk: d, DiskProfile: cost.Disk()})
	if err := m.Put("v1", floatArtifact("v1", 1000)); err != nil {
		t.Fatal(err)
	}
	sz := int64(8000)
	memCost := m.LoadCostFor("v1", sz)
	if want := cost.Memory().LoadCost(sz).Seconds(); memCost != want {
		t.Fatalf("memory-resident cost = %v, want %v", memCost, want)
	}
	if err := m.Demote("v1"); err != nil {
		t.Fatal(err)
	}
	diskCost := m.LoadCostFor("v1", sz)
	if want := cost.Disk().LoadCost(sz).Seconds(); diskCost != want {
		t.Fatalf("disk-resident cost = %v, want %v", diskCost, want)
	}
	if diskCost <= memCost {
		t.Fatal("disk tier should be priced slower than memory")
	}
}

// TestPeekDoesNotPromote: reads for snapshotting/transfer must not disturb
// tier placement or LRU order.
func TestPeekDoesNotPromote(t *testing.T) {
	d := newDisk(t)
	m := NewTiered(cost.Memory(), Options{Disk: d})
	if err := m.Put("v1", floatArtifact("v1", 10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Demote("v1"); err != nil {
		t.Fatal(err)
	}
	a, tr := m.Peek("v1")
	if a == nil || tr != TierDisk {
		t.Fatalf("Peek = %v, %v", a, tr)
	}
	if m.TierOf("v1") != TierDisk {
		t.Fatal("Peek promoted the artifact")
	}
}

// TestDemoteIdleSweep: the background sweep demotes only artifacts idle
// longer than the cutoff.
func TestDemoteIdleSweep(t *testing.T) {
	d := newDisk(t)
	m := NewTiered(cost.Memory(), Options{Disk: d})
	if err := m.Put("old", floatArtifact("old", 10)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := m.Put("fresh", floatArtifact("fresh", 10)); err != nil {
		t.Fatal(err)
	}
	if n := m.DemoteIdle(15 * time.Millisecond); n != 1 {
		t.Fatalf("demoted %d, want 1", n)
	}
	if m.TierOf("old") != TierDisk || m.TierOf("fresh") != TierMemory {
		t.Fatalf("sweep hit the wrong artifact: old=%v fresh=%v",
			m.TierOf("old"), m.TierOf("fresh"))
	}
}

// TestFlushToDiskSurvivesRestart: flushing then reopening the directory in
// a new manager serves the same artifacts from the disk tier.
func TestFlushToDiskSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	d, _, err := tier.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewTiered(cost.Memory(), Options{Disk: d})
	if err := m.Put("v1", floatArtifact("v1", 10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("m1", &graph.AggregateArtifact{Value: 42}); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushToDisk(); err != nil {
		t.Fatal(err)
	}
	if m.MemoryBytes() != 0 {
		t.Fatalf("memory not drained: %d bytes", m.MemoryBytes())
	}

	d2, rep, err := tier.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 0 || rep.Frames != 1 || rep.Blobs != 1 {
		t.Fatalf("recovery report: %+v", rep)
	}
	m2 := NewTiered(cost.Memory(), Options{Disk: d2})
	a, tr := m2.GetTiered("m1")
	if tr != TierDisk || a.(*graph.AggregateArtifact).Value != 42 {
		t.Fatalf("blob not recovered: %v %v", a, tr)
	}
	if a, tr := m2.GetTiered("v1"); tr != TierDisk || a == nil {
		t.Fatal("frame not recovered")
	}
	if m2.Len() != 2 {
		t.Fatalf("recovered %d artifacts, want 2", m2.Len())
	}
}

// TestDictColumnSurvivesTiers: a dictionary-encoded string column keeps its
// representation (and its contents) through demotion to disk and a restart
// recovery — the disk codec stores codes + dictionary, not expanded strings.
func TestDictColumnSurvivesTiers(t *testing.T) {
	dir := t.TempDir()
	d, _, err := tier.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	col := data.NewStringColumn("region", []string{"north", "south", "north", "", "south", "north"}).DictEncoded()
	if !col.IsDict() {
		t.Fatal("setup: column should be dictionary-encoded")
	}
	m := NewTiered(cost.Memory(), Options{Disk: d})
	if err := m.Put("v1", &graph.DatasetArtifact{Frame: data.MustNewFrame(col)}); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushToDisk(); err != nil {
		t.Fatal(err)
	}

	check := func(mgr *Manager, stage string) {
		t.Helper()
		a, tr := mgr.GetTiered("v1")
		if tr != TierDisk || a == nil {
			t.Fatalf("%s: artifact not on disk: %v %v", stage, a, tr)
		}
		got := a.(*graph.DatasetArtifact).Frame.Column("region")
		if got == nil {
			t.Fatalf("%s: column missing", stage)
		}
		if !got.IsDict() {
			t.Fatalf("%s: column lost dictionary encoding", stage)
		}
		if got.Len() != col.Len() {
			t.Fatalf("%s: %d rows, want %d", stage, got.Len(), col.Len())
		}
		for i := 0; i < col.Len(); i++ {
			if got.StringAt(i) != col.StringAt(i) {
				t.Fatalf("%s row %d: %q != %q", stage, i, got.StringAt(i), col.StringAt(i))
			}
		}
	}
	check(m, "after flush")

	d2, rep, err := tier.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quarantined != 0 {
		t.Fatalf("recovery quarantined %d files", rep.Quarantined)
	}
	check(NewTiered(cost.Memory(), Options{Disk: d2}), "after restart")
}
