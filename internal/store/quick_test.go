package store

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/graph"
	"repro/internal/tier"
)

// TestQuickPhysicalBytesMatchReferenceModel drives the store with a random
// put/evict sequence over artifacts sharing a column pool and checks the
// deduplicated accounting against a naive reference model.
func TestQuickPhysicalBytesMatchReferenceModel(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Column pool: 6 shared columns of one common length (frames
		// require equal-length columns).
		rows := 1 + rng.Intn(16)
		pool := make([]*data.Column, 6)
		for j := range pool {
			pool[j] = data.NewFloatColumn(fmt.Sprintf("c%d", j), make([]float64, rows))
		}
		m := New(cost.Memory())
		// Reference: which artifact holds which column IDs.
		held := make(map[string][]string)
		colSize := make(map[string]int64)
		for _, c := range pool {
			colSize[c.ID] = c.SizeBytes()
		}
		for step := 0; step < 40; step++ {
			id := fmt.Sprintf("v%d", rng.Intn(10))
			if rng.Intn(3) == 0 {
				m.Evict(id)
				delete(held, id)
			} else if _, ok := held[id]; !ok {
				// random subset of the pool, ≥1 column
				var cols []*data.Column
				var ids []string
				for _, c := range pool {
					if rng.Intn(2) == 0 {
						cols = append(cols, c)
						ids = append(ids, c.ID)
					}
				}
				if len(cols) == 0 {
					cols = pool[:1]
					ids = []string{pool[0].ID}
				}
				if err := m.Put(id, &graph.DatasetArtifact{Frame: data.MustNewFrame(cols...)}); err != nil {
					return false
				}
				held[id] = ids
			}
			// reference physical = union of held column IDs
			want := int64(0)
			seen := map[string]bool{}
			for _, ids := range held {
				for _, cid := range ids {
					if !seen[cid] {
						seen[cid] = true
						want += colSize[cid]
					}
				}
			}
			if m.PhysicalBytes() != want {
				return false
			}
			if m.Len() != len(held) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickTieredBytesMatchReferenceModel drives a tiered manager with a
// random put/get/demote/evict sequence over artifacts sharing a column pool
// and checks per-tier deduplicated physical bytes against a reference model
// at every step. The model mirrors the inclusive-tier contract: Demote
// spills to disk and drops the memory copy; Get on a disk resident promotes
// while keeping the disk copy; Evict clears both tiers.
func TestQuickTieredBytesMatchReferenceModel(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(16)
		pool := make([]*data.Column, 6)
		for j := range pool {
			pool[j] = data.NewFloatColumn(fmt.Sprintf("c%d", j), make([]float64, rows))
		}
		colSize := make(map[string]int64)
		for _, c := range pool {
			colSize[c.ID] = c.SizeBytes()
		}
		dir := t.TempDir()
		d, _, err := tier.Open(dir)
		if err != nil {
			return false
		}
		// Unbudgeted: tier moves happen only through explicit ops, so the
		// reference model stays exact.
		m := NewTiered(cost.Memory(), Options{Disk: d})
		// Reference: column IDs held per artifact, per tier.
		memHeld := make(map[string][]string)
		diskHeld := make(map[string][]string)
		union := func(held map[string][]string) int64 {
			var sum int64
			seen := map[string]bool{}
			for _, ids := range held {
				for _, cid := range ids {
					if !seen[cid] {
						seen[cid] = true
						sum += colSize[cid]
					}
				}
			}
			return sum
		}
		for step := 0; step < 60; step++ {
			id := fmt.Sprintf("v%d", rng.Intn(8))
			switch rng.Intn(5) {
			case 0: // evict from all tiers
				m.Evict(id)
				delete(memHeld, id)
				delete(diskHeld, id)
			case 1: // demote memory → disk
				err := m.Demote(id)
				if ids, inMem := memHeld[id]; inMem {
					if err != nil {
						return false
					}
					diskHeld[id] = ids
					delete(memHeld, id)
				} else if err == nil {
					return false // demoting a non-resident must fail
				}
			case 2: // get: promotes a disk resident, keeps the disk copy
				a, tr := m.GetTiered(id)
				if ids, onDisk := diskHeld[id]; onDisk {
					if _, inMem := memHeld[id]; !inMem {
						if a == nil || tr != TierDisk {
							return false
						}
						memHeld[id] = ids
					} else if tr != TierMemory {
						return false
					}
				} else if _, inMem := memHeld[id]; inMem {
					if tr != TierMemory {
						return false
					}
				} else if a != nil || tr != TierNone {
					return false
				}
			default: // put a random subset of the pool (no-op when present)
				if _, inMem := memHeld[id]; inMem {
					continue
				}
				if _, onDisk := diskHeld[id]; onDisk {
					continue
				}
				var cols []*data.Column
				var ids []string
				for _, c := range pool {
					if rng.Intn(2) == 0 {
						cols = append(cols, c)
						ids = append(ids, c.ID)
					}
				}
				if len(cols) == 0 {
					cols = pool[:1]
					ids = []string{pool[0].ID}
				}
				if err := m.Put(id, &graph.DatasetArtifact{Frame: data.MustNewFrame(cols...)}); err != nil {
					return false
				}
				memHeld[id] = ids
			}
			// Per-tier physical bytes must match the reference unions.
			if m.MemoryBytes() != union(memHeld) {
				return false
			}
			if m.DiskBytes() != union(diskHeld) {
				return false
			}
			// Artifact count is the union across tiers.
			n := len(memHeld)
			for id := range diskHeld {
				if _, inMem := memHeld[id]; !inMem {
					n++
				}
			}
			if m.Len() != n {
				return false
			}
			for id := range memHeld {
				if m.TierOf(id) != TierMemory {
					return false
				}
			}
			for id := range diskHeld {
				if _, inMem := memHeld[id]; !inMem && m.TierOf(id) != TierDisk {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickGetReturnsWhatWasPut: any stored dataset round-trips with
// identical column IDs, names and lengths.
func TestQuickGetReturnsWhatWasPut(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(cost.Memory())
		nCols := 1 + rng.Intn(5)
		cols := make([]*data.Column, nCols)
		rows := 1 + rng.Intn(10)
		for j := range cols {
			vals := make([]float64, rows)
			for i := range vals {
				vals[i] = rng.Float64()
			}
			cols[j] = data.NewFloatColumn(fmt.Sprintf("c%d", j), vals)
		}
		f := data.MustNewFrame(cols...)
		if err := m.Put("v", &graph.DatasetArtifact{Frame: f}); err != nil {
			return false
		}
		got, ok := m.Get("v").(*graph.DatasetArtifact)
		if !ok || got.Frame.NumRows() != rows || got.Frame.NumCols() != nCols {
			return false
		}
		for j, c := range got.Frame.Columns() {
			if c.ID != cols[j].ID || c.Name != cols[j].Name {
				return false
			}
			for i := range c.Floats {
				if c.Floats[i] != cols[j].Floats[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
