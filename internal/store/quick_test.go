package store

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/graph"
)

// TestQuickPhysicalBytesMatchReferenceModel drives the store with a random
// put/evict sequence over artifacts sharing a column pool and checks the
// deduplicated accounting against a naive reference model.
func TestQuickPhysicalBytesMatchReferenceModel(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Column pool: 6 shared columns of one common length (frames
		// require equal-length columns).
		rows := 1 + rng.Intn(16)
		pool := make([]*data.Column, 6)
		for j := range pool {
			pool[j] = data.NewFloatColumn(fmt.Sprintf("c%d", j), make([]float64, rows))
		}
		m := New(cost.Memory())
		// Reference: which artifact holds which column IDs.
		held := make(map[string][]string)
		colSize := make(map[string]int64)
		for _, c := range pool {
			colSize[c.ID] = c.SizeBytes()
		}
		for step := 0; step < 40; step++ {
			id := fmt.Sprintf("v%d", rng.Intn(10))
			if rng.Intn(3) == 0 {
				m.Evict(id)
				delete(held, id)
			} else if _, ok := held[id]; !ok {
				// random subset of the pool, ≥1 column
				var cols []*data.Column
				var ids []string
				for _, c := range pool {
					if rng.Intn(2) == 0 {
						cols = append(cols, c)
						ids = append(ids, c.ID)
					}
				}
				if len(cols) == 0 {
					cols = pool[:1]
					ids = []string{pool[0].ID}
				}
				if err := m.Put(id, &graph.DatasetArtifact{Frame: data.MustNewFrame(cols...)}); err != nil {
					return false
				}
				held[id] = ids
			}
			// reference physical = union of held column IDs
			want := int64(0)
			seen := map[string]bool{}
			for _, ids := range held {
				for _, cid := range ids {
					if !seen[cid] {
						seen[cid] = true
						want += colSize[cid]
					}
				}
			}
			if m.PhysicalBytes() != want {
				return false
			}
			if m.Len() != len(held) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickGetReturnsWhatWasPut: any stored dataset round-trips with
// identical column IDs, names and lengths.
func TestQuickGetReturnsWhatWasPut(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(cost.Memory())
		nCols := 1 + rng.Intn(5)
		cols := make([]*data.Column, nCols)
		rows := 1 + rng.Intn(10)
		for j := range cols {
			vals := make([]float64, rows)
			for i := range vals {
				vals[i] = rng.Float64()
			}
			cols[j] = data.NewFloatColumn(fmt.Sprintf("c%d", j), vals)
		}
		f := data.MustNewFrame(cols...)
		if err := m.Put("v", &graph.DatasetArtifact{Frame: f}); err != nil {
			return false
		}
		got, ok := m.Get("v").(*graph.DatasetArtifact)
		if !ok || got.Frame.NumRows() != rows || got.Frame.NumCols() != nCols {
			return false
		}
		for j, c := range got.Frame.Columns() {
			if c.ID != cols[j].ID || c.Name != cols[j].Name {
				return false
			}
			for i := range c.Floats {
				if c.Floats[i] != cols[j].Floats[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
