package tier

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/data"
	"repro/internal/graph"
	"repro/internal/ml"
)

// The disk tier registers the artifact and model types it gob-encodes as
// blobs. Registration is idempotent with internal/remote's identical set.
func init() {
	gob.Register(&graph.DatasetArtifact{})
	gob.Register(&graph.AggregateArtifact{})
	gob.Register(&graph.ModelArtifact{})
	gob.Register(&graph.TransformerArtifact{})
	gob.Register(&data.Frame{})
	gob.Register(&ml.LogisticRegression{})
	gob.Register(&ml.LinearRegression{})
	gob.Register(&ml.DecisionTree{})
	gob.Register(&ml.GradientBoostedTrees{})
	gob.Register(&ml.RandomForest{})
	gob.Register(&ml.KNN{})
	gob.Register(&ml.GaussianNB{})
	gob.Register(&ml.LinearSVM{})
	gob.Register(&ml.KMeans{})
	gob.Register(&ml.StandardScaler{})
	gob.Register(&ml.MinMaxScaler{})
	gob.Register(&ml.SelectKBest{})
	gob.Register(&ml.PCA{})
}

// Directory layout under the tier root:
//
//	cols/<h>.col        one file per column lineage ID (EncodeColumn)
//	frames/<h>.mf       dataset manifest: vertex ID → ordered (colID, name)
//	blobs/<h>.bl        whole-blob artifacts (models, aggregates), gob payload
//	quarantine/         corrupt files moved here by Open, never loaded
//
// File names are hex(sha256(logical ID))[:40]; the logical ID inside the
// (checksummed) file is authoritative, so arbitrary vertex IDs are safe.
const (
	colsDir       = "cols"
	framesDir     = "frames"
	blobsDir      = "blobs"
	quarantineDir = "quarantine"

	colExt   = ".col"
	frameExt = ".mf"
	blobExt  = ".bl"

	frameMagic = "CTM1"
	blobMagic  = "CTB1"
)

func fname(id string) string {
	h := sha256.Sum256([]byte(id))
	return hex.EncodeToString(h[:20])
}

// manifest is the in-memory index entry for a spilled dataset artifact.
type manifest struct {
	colIDs []string
	names  []string
}

type colState struct {
	size int64
	refs int
}

// Report summarizes what Open found while rebuilding the tier index.
type Report struct {
	// Columns, Frames, Blobs count the files that verified cleanly.
	Columns, Frames, Blobs int
	// Quarantined counts corrupt or inconsistent files moved to
	// quarantine/ instead of being loaded.
	Quarantined int
	// OrphanColumns counts verified column files no manifest referenced;
	// they are deleted (garbage collection).
	OrphanColumns int
	// BytesVerified is the total size of files whose checksums were
	// verified.
	BytesVerified int64
}

// Disk is the durable tier: a content-addressed, checksummed column/blob
// store rooted at a directory. It is safe for concurrent use. All writes
// are atomic (temp file + rename) and fsynced, so a crash never leaves a
// half-written file under its final name.
type Disk struct {
	mu  sync.Mutex
	dir string

	frames  map[string]manifest // vertex ID → spilled dataset manifest
	blobs   map[string]int64    // vertex ID → logical blob size
	cols    map[string]colState // column lineage ID → size and ref count
	logical map[string]int64    // vertex ID → logical artifact size

	physical int64 // deduplicated bytes on disk (column + blob payloads)
}

// Open attaches to (or creates) a disk tier rooted at dir: it scans the
// store directories, verifies every file's checksum, quarantines corrupt or
// inconsistent files, deletes orphaned columns, and rebuilds the index.
func Open(dir string) (*Disk, *Report, error) {
	for _, sub := range []string{colsDir, framesDir, blobsDir, quarantineDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, nil, fmt.Errorf("tier: %w", err)
		}
	}
	d := &Disk{
		dir:     dir,
		frames:  make(map[string]manifest),
		blobs:   make(map[string]int64),
		cols:    make(map[string]colState),
		logical: make(map[string]int64),
	}
	rep := &Report{}
	if err := d.scanColumns(rep); err != nil {
		return nil, nil, err
	}
	if err := d.scanFrames(rep); err != nil {
		return nil, nil, err
	}
	if err := d.scanBlobs(rep); err != nil {
		return nil, nil, err
	}
	// Garbage-collect verified columns no surviving manifest references.
	for id, st := range d.cols {
		if st.refs == 0 {
			_ = os.Remove(d.colPath(id))
			delete(d.cols, id)
			rep.OrphanColumns++
		} else {
			d.physical += st.size
		}
	}
	for _, sz := range d.blobs {
		d.physical += sz
	}
	return d, rep, nil
}

// Dir returns the tier's root directory.
func (d *Disk) Dir() string { return d.dir }

func (d *Disk) colPath(colID string) string {
	return filepath.Join(d.dir, colsDir, fname(colID)+colExt)
}

func (d *Disk) framePath(vid string) string {
	return filepath.Join(d.dir, framesDir, fname(vid)+frameExt)
}

func (d *Disk) blobPath(vid string) string {
	return filepath.Join(d.dir, blobsDir, fname(vid)+blobExt)
}

// quarantine moves a bad file aside so it is never loaded again but remains
// available for forensics. Best-effort: if the move fails the file is left
// in place (and will fail verification again next boot).
func (d *Disk) quarantine(path string) {
	_ = os.Rename(path, filepath.Join(d.dir, quarantineDir, filepath.Base(path)))
}

func (d *Disk) scanColumns(rep *Report) error {
	entries, err := os.ReadDir(filepath.Join(d.dir, colsDir))
	if err != nil {
		return fmt.Errorf("tier: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != colExt {
			continue
		}
		path := filepath.Join(d.dir, colsDir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			d.quarantine(path)
			rep.Quarantined++
			continue
		}
		c, err := DecodeColumn(b)
		if err != nil || fname(c.ID)+colExt != e.Name() {
			d.quarantine(path)
			rep.Quarantined++
			continue
		}
		d.cols[c.ID] = colState{size: c.SizeBytes()}
		rep.Columns++
		rep.BytesVerified += int64(len(b))
	}
	return nil
}

func (d *Disk) scanFrames(rep *Report) error {
	entries, err := os.ReadDir(filepath.Join(d.dir, framesDir))
	if err != nil {
		return fmt.Errorf("tier: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != frameExt {
			continue
		}
		path := filepath.Join(d.dir, framesDir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			d.quarantine(path)
			rep.Quarantined++
			continue
		}
		vid, man, err := decodeManifest(b)
		if err != nil || fname(vid)+frameExt != e.Name() {
			d.quarantine(path)
			rep.Quarantined++
			continue
		}
		// A manifest referencing a missing or quarantined column is
		// unservable: quarantine it too, rather than serving a torn frame.
		complete := true
		for _, cid := range man.colIDs {
			if _, ok := d.cols[cid]; !ok {
				complete = false
				break
			}
		}
		if !complete {
			d.quarantine(path)
			rep.Quarantined++
			continue
		}
		var logical int64
		for _, cid := range man.colIDs {
			st := d.cols[cid]
			st.refs++
			d.cols[cid] = st
			logical += st.size
		}
		d.frames[vid] = man
		d.logical[vid] = logical
		rep.Frames++
		rep.BytesVerified += int64(len(b))
	}
	return nil
}

func (d *Disk) scanBlobs(rep *Report) error {
	entries, err := os.ReadDir(filepath.Join(d.dir, blobsDir))
	if err != nil {
		return fmt.Errorf("tier: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != blobExt {
			continue
		}
		path := filepath.Join(d.dir, blobsDir, e.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			d.quarantine(path)
			rep.Quarantined++
			continue
		}
		vid, content, err := decodeBlob(b)
		if err != nil || fname(vid)+blobExt != e.Name() {
			d.quarantine(path)
			rep.Quarantined++
			continue
		}
		sz := content.SizeBytes()
		d.blobs[vid] = sz
		d.logical[vid] = sz
		rep.Blobs++
		rep.BytesVerified += int64(len(b))
	}
	return nil
}

// writeFileAtomic writes b to path via a temp file, fsync, and rename, so a
// crash mid-write never leaves a torn file under the final name.
func writeFileAtomic(path string, b []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("tier: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("tier: writing %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("tier: syncing %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("tier: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("tier: %w", err)
	}
	return nil
}

// Manifest file format (version 1):
//
//	magic "CTM1", u16 vidLen + vid, u32 count,
//	count × (u16 idLen + colID, u16 nameLen + name), u32 CRC-32C
func encodeManifest(vid string, man manifest) ([]byte, error) {
	if len(vid) > maxMetaLen {
		return nil, fmt.Errorf("tier: vertex id too long (%d bytes)", len(vid))
	}
	b := make([]byte, 0, 64)
	b = append(b, frameMagic...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(vid)))
	b = append(b, vid...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(man.colIDs)))
	for i, cid := range man.colIDs {
		if len(cid) > maxMetaLen || len(man.names[i]) > maxMetaLen {
			return nil, fmt.Errorf("tier: column id/name too long")
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(cid)))
		b = append(b, cid...)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(man.names[i])))
		b = append(b, man.names[i]...)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli)), nil
}

func decodeManifest(b []byte) (vid string, man manifest, err error) {
	if len(b) < len(frameMagic)+4 || string(b[:len(frameMagic)]) != frameMagic {
		return "", man, fmt.Errorf("%w: bad manifest magic", ErrCorrupt)
	}
	body, crcBytes := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(crcBytes) {
		return "", man, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	r := &colReader{b: body, off: len(frameMagic)}
	vidLen, ok := r.u16()
	if !ok {
		return "", man, fmt.Errorf("%w: truncated manifest", ErrCorrupt)
	}
	vb, ok := r.take(int(vidLen))
	if !ok {
		return "", man, fmt.Errorf("%w: truncated manifest", ErrCorrupt)
	}
	vid = string(vb)
	count, ok := r.u32()
	if !ok {
		return "", man, fmt.Errorf("%w: truncated manifest", ErrCorrupt)
	}
	for i := 0; i < int(count); i++ {
		idLen, ok := r.u16()
		if !ok {
			return "", man, fmt.Errorf("%w: truncated manifest entry", ErrCorrupt)
		}
		id, ok := r.take(int(idLen))
		if !ok {
			return "", man, fmt.Errorf("%w: truncated manifest entry", ErrCorrupt)
		}
		nameLen, ok := r.u16()
		if !ok {
			return "", man, fmt.Errorf("%w: truncated manifest entry", ErrCorrupt)
		}
		name, ok := r.take(int(nameLen))
		if !ok {
			return "", man, fmt.Errorf("%w: truncated manifest entry", ErrCorrupt)
		}
		man.colIDs = append(man.colIDs, string(id))
		man.names = append(man.names, string(name))
	}
	if r.off != len(body) {
		return "", man, fmt.Errorf("%w: trailing manifest bytes", ErrCorrupt)
	}
	return vid, man, nil
}

// Blob file format (version 1):
//
//	magic "CTB1", u16 vidLen + vid, gob payload, u32 CRC-32C
func encodeBlob(vid string, a graph.Artifact) ([]byte, error) {
	if len(vid) > maxMetaLen {
		return nil, fmt.Errorf("tier: vertex id too long (%d bytes)", len(vid))
	}
	b := make([]byte, 0, 256)
	b = append(b, blobMagic...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(vid)))
	b = append(b, vid...)
	var buf bytes.Buffer
	env := blobEnvelope{Content: a}
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		return nil, fmt.Errorf("tier: encoding blob %s: %w", vid, err)
	}
	b = append(b, buf.Bytes()...)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli)), nil
}

func decodeBlob(b []byte) (vid string, content graph.Artifact, err error) {
	if len(b) < len(blobMagic)+4 || string(b[:len(blobMagic)]) != blobMagic {
		return "", nil, fmt.Errorf("%w: bad blob magic", ErrCorrupt)
	}
	body, crcBytes := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(crcBytes) {
		return "", nil, fmt.Errorf("%w: blob checksum mismatch", ErrCorrupt)
	}
	r := &colReader{b: body, off: len(blobMagic)}
	vidLen, ok := r.u16()
	if !ok {
		return "", nil, fmt.Errorf("%w: truncated blob", ErrCorrupt)
	}
	vb, ok := r.take(int(vidLen))
	if !ok {
		return "", nil, fmt.Errorf("%w: truncated blob", ErrCorrupt)
	}
	vid = string(vb)
	var env blobEnvelope
	if err := gob.NewDecoder(bytes.NewReader(body[r.off:])).Decode(&env); err != nil {
		return "", nil, fmt.Errorf("%w: blob gob: %v", ErrCorrupt, err)
	}
	if env.Content == nil {
		return "", nil, fmt.Errorf("%w: empty blob", ErrCorrupt)
	}
	return vid, env.Content, nil
}

// blobEnvelope wraps the Artifact interface for gob.
type blobEnvelope struct {
	Content graph.Artifact
}

// PutFrame spills a dataset artifact: it writes column files that are not
// already present (content-addressed dedup) and then the manifest. The
// manifest is written last, so a crash mid-spill leaves only orphan columns
// that the next Open garbage-collects. Re-putting an existing vertex is a
// no-op.
func (d *Disk) PutFrame(vid string, cols []*data.Column) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.frames[vid]; ok {
		return nil
	}
	man := manifest{
		colIDs: make([]string, len(cols)),
		names:  make([]string, len(cols)),
	}
	var logical int64
	for i, c := range cols {
		man.colIDs[i] = c.ID
		man.names[i] = c.Name
		logical += c.SizeBytes()
		if _, ok := d.cols[c.ID]; ok {
			continue
		}
		b, err := EncodeColumn(c)
		if err != nil {
			return err
		}
		if err := writeFileAtomic(d.colPath(c.ID), b); err != nil {
			return err
		}
		d.cols[c.ID] = colState{size: c.SizeBytes()}
		d.physical += c.SizeBytes()
	}
	mb, err := encodeManifest(vid, man)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(d.framePath(vid), mb); err != nil {
		return err
	}
	for _, cid := range man.colIDs {
		st := d.cols[cid]
		st.refs++
		d.cols[cid] = st
	}
	d.frames[vid] = man
	d.logical[vid] = logical
	return nil
}

// PutBlob spills a non-dataset artifact as one checksummed file.
// Re-putting an existing vertex is a no-op.
func (d *Disk) PutBlob(vid string, a graph.Artifact) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.blobs[vid]; ok {
		return nil
	}
	b, err := encodeBlob(vid, a)
	if err != nil {
		return err
	}
	if err := writeFileAtomic(d.blobPath(vid), b); err != nil {
		return err
	}
	sz := a.SizeBytes()
	d.blobs[vid] = sz
	d.logical[vid] = sz
	d.physical += sz
	return nil
}

// Get reads, verifies, and reassembles the artifact stored for a vertex.
// It returns (nil, nil) when the vertex is absent. A checksum or decode
// failure quarantines the offending file, drops the vertex from the index,
// and returns an error wrapping ErrCorrupt.
func (d *Disk) Get(vid string) (graph.Artifact, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if man, ok := d.frames[vid]; ok {
		cols := make([]*data.Column, len(man.colIDs))
		for i, cid := range man.colIDs {
			b, err := os.ReadFile(d.colPath(cid))
			if err != nil {
				d.dropFrameLocked(vid)
				return nil, fmt.Errorf("tier: reading column %s of %s: %w", cid, vid, err)
			}
			c, err := DecodeColumn(b)
			if err != nil || c.ID != cid {
				d.quarantine(d.colPath(cid))
				d.dropFrameLocked(vid)
				if err == nil {
					err = fmt.Errorf("%w: column identity mismatch", ErrCorrupt)
				}
				return nil, fmt.Errorf("tier: column %s of %s: %w", cid, vid, err)
			}
			if c.Name != man.names[i] {
				c = c.WithID(c.ID)
				c.Name = man.names[i]
			}
			cols[i] = c
		}
		f, err := data.NewFrame(cols...)
		if err != nil {
			d.dropFrameLocked(vid)
			return nil, fmt.Errorf("tier: reassembling %s: %w", vid, err)
		}
		return &graph.DatasetArtifact{Frame: f}, nil
	}
	if _, ok := d.blobs[vid]; ok {
		path := d.blobPath(vid)
		b, err := os.ReadFile(path)
		if err != nil {
			d.dropBlobLocked(vid)
			return nil, fmt.Errorf("tier: reading blob %s: %w", vid, err)
		}
		gotVid, content, err := decodeBlob(b)
		if err != nil || gotVid != vid {
			d.quarantine(path)
			d.dropBlobLocked(vid)
			if err == nil {
				err = fmt.Errorf("%w: blob identity mismatch", ErrCorrupt)
			}
			return nil, fmt.Errorf("tier: blob %s: %w", vid, err)
		}
		return content, nil
	}
	return nil, nil
}

// dropFrameLocked removes a frame from the index (not its column files,
// which other manifests may share; unreferenced ones are GC'd at next Open).
func (d *Disk) dropFrameLocked(vid string) {
	man, ok := d.frames[vid]
	if !ok {
		return
	}
	for _, cid := range man.colIDs {
		st, ok := d.cols[cid]
		if !ok {
			continue
		}
		st.refs--
		if st.refs <= 0 {
			d.physical -= st.size
			delete(d.cols, cid)
		} else {
			d.cols[cid] = st
		}
	}
	_ = os.Remove(d.framePath(vid))
	delete(d.frames, vid)
	delete(d.logical, vid)
}

func (d *Disk) dropBlobLocked(vid string) {
	if sz, ok := d.blobs[vid]; ok {
		d.physical -= sz
		_ = os.Remove(d.blobPath(vid))
		delete(d.blobs, vid)
		delete(d.logical, vid)
	}
}

// Evict removes a vertex's content from disk: the manifest or blob file is
// deleted, column references released, and column files no longer
// referenced by any manifest deleted.
func (d *Disk) Evict(vid string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if man, ok := d.frames[vid]; ok {
		for _, cid := range man.colIDs {
			st, ok := d.cols[cid]
			if !ok {
				continue
			}
			st.refs--
			if st.refs <= 0 {
				d.physical -= st.size
				_ = os.Remove(d.colPath(cid))
				delete(d.cols, cid)
			} else {
				d.cols[cid] = st
			}
		}
		_ = os.Remove(d.framePath(vid))
		delete(d.frames, vid)
		delete(d.logical, vid)
		return
	}
	d.dropBlobLocked(vid)
}

// Has reports whether the vertex's content is on disk.
func (d *Disk) Has(vid string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, f := d.frames[vid]
	_, b := d.blobs[vid]
	return f || b
}

// LogicalSize returns the stored artifact's logical size, or 0 if absent.
func (d *Disk) LogicalSize(vid string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.logical[vid]
}

// PhysicalBytes returns the deduplicated payload bytes resident on disk.
func (d *Disk) PhysicalBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.physical
}

// Len returns the number of artifacts on disk.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.frames) + len(d.blobs)
}

// StoredIDs returns the vertex IDs with content on disk, sorted for
// deterministic iteration.
func (d *Disk) StoredIDs() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.frames)+len(d.blobs))
	for id := range d.frames {
		out = append(out, id)
	}
	for id := range d.blobs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
