// Package tier implements the durable disk tier of the artifact storage
// subsystem (DESIGN.md "Tiered storage"). The on-disk layout is
// content-addressed at column granularity — one checksummed file per column
// lineage ID — so the cross-artifact column deduplication of §5.3 survives
// spilling: two artifacts sharing a column share one file on disk exactly as
// they share one array in memory. Models and aggregates are stored as whole
// checksummed blobs.
//
// Every file carries a CRC-32C checksum over its entire content. Torn
// writes, truncation, and bit rot are detected on read and at boot, when
// Open scans the directory, verifies every file, quarantines corrupt ones,
// and rebuilds the tier index so a restarted server comes up warm.
package tier

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/data"
)

// ErrCorrupt marks a file that failed structural validation or checksum
// verification. Callers treat such files as absent and quarantine them.
var ErrCorrupt = errors.New("tier: corrupt file")

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Column file format (version 1, all integers little-endian):
//
//	magic   "CTC1"                       4 bytes
//	dtype   uint8                        data.DType
//	idLen   uint16, id bytes             lineage ID
//	nameLen uint16, name bytes           column name at write time
//	rows    uint32
//	payload                              per-dtype, see below
//	crc     uint32                       CRC-32C of everything above
//
// Payload: Float64/Int64 are 8 bytes per row (IEEE-754 bits / two's
// complement), Bool is 1 byte per row (0 or 1 — anything else is rejected,
// keeping the encoding canonical), String is uint32 length + bytes per row.
//
// Dictionary-encoded string columns set the high bit of the dtype byte
// (dictDType | String) and carry a different payload: uint32 dictionary
// length, then uint32 length + bytes per dictionary entry, then one uint32
// code per row. Codes must index the dictionary; out-of-bounds codes are
// rejected. The dictionary itself is accepted as-is (any entries, any
// order) so decoding stays canonical — consumers that rely on sortedness
// re-check it.
//
// The encoding is canonical: any byte string that decodes successfully
// re-encodes to exactly the same bytes, which the fuzz test exploits.
const colMagic = "CTC1"

// dictDType flags a dictionary-encoded payload in the dtype byte. Only
// valid combined with data.String.
const dictDType = 0x80

// maxMetaLen bounds the ID and name fields (they are hex hashes and short
// human names in practice).
const maxMetaLen = 1 << 12

// EncodeColumn serializes a column in the canonical checksummed format.
func EncodeColumn(c *data.Column) ([]byte, error) {
	if c == nil {
		return nil, fmt.Errorf("tier: nil column")
	}
	if len(c.ID) > maxMetaLen || len(c.Name) > maxMetaLen {
		return nil, fmt.Errorf("tier: column id/name too long (%d/%d bytes)", len(c.ID), len(c.Name))
	}
	rows := c.Len()
	if rows > math.MaxUint32 {
		return nil, fmt.Errorf("tier: column too long (%d rows)", rows)
	}
	isDict := c.IsDict()
	dtype := byte(c.Type)
	if isDict {
		dtype |= dictDType
	}
	b := make([]byte, 0, 16+len(c.ID)+len(c.Name)+rows*8)
	b = append(b, colMagic...)
	b = append(b, dtype)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(c.ID)))
	b = append(b, c.ID...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(c.Name)))
	b = append(b, c.Name...)
	b = binary.LittleEndian.AppendUint32(b, uint32(rows))
	if isDict {
		if len(c.Dict) > math.MaxUint32 {
			return nil, fmt.Errorf("tier: dictionary too large (%d entries)", len(c.Dict))
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(c.Dict)))
		for _, s := range c.Dict {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
			b = append(b, s...)
		}
		for _, code := range c.Codes {
			if int(code) >= len(c.Dict) {
				return nil, fmt.Errorf("tier: code %d out of bounds for %d-entry dictionary", code, len(c.Dict))
			}
			b = binary.LittleEndian.AppendUint32(b, code)
		}
		return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli)), nil
	}
	switch c.Type {
	case data.Float64:
		for _, v := range c.Floats {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	case data.Int64:
		for _, v := range c.Ints {
			b = binary.LittleEndian.AppendUint64(b, uint64(v))
		}
	case data.String:
		for _, s := range c.Strings {
			b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
			b = append(b, s...)
		}
	case data.Bool:
		for _, v := range c.Bools {
			if v {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
		}
	default:
		return nil, fmt.Errorf("tier: unsupported dtype %v", c.Type)
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli)), nil
}

// colReader is a bounds-checked cursor over an encoded column.
type colReader struct {
	b   []byte
	off int
}

func (r *colReader) take(n int) ([]byte, bool) {
	if n < 0 || len(r.b)-r.off < n {
		return nil, false
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out, true
}

func (r *colReader) u16() (uint16, bool) {
	b, ok := r.take(2)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint16(b), true
}

func (r *colReader) u32() (uint32, bool) {
	b, ok := r.take(4)
	if !ok {
		return 0, false
	}
	return binary.LittleEndian.Uint32(b), true
}

// DecodeColumn parses and verifies a canonical column encoding. Any
// structural violation or checksum mismatch returns an error wrapping
// ErrCorrupt.
func DecodeColumn(b []byte) (*data.Column, error) {
	if len(b) < len(colMagic)+4 || string(b[:len(colMagic)]) != colMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, crcBytes := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r := &colReader{b: body, off: len(colMagic)}
	dt, ok := r.take(1)
	if !ok {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	isDict := dt[0]&dictDType != 0
	c := &data.Column{Type: data.DType(dt[0] &^ dictDType)}
	if isDict && c.Type != data.String {
		return nil, fmt.Errorf("%w: dict flag on dtype %d", ErrCorrupt, dt[0]&^dictDType)
	}
	idLen, ok := r.u16()
	if !ok {
		return nil, fmt.Errorf("%w: truncated id", ErrCorrupt)
	}
	id, ok := r.take(int(idLen))
	if !ok {
		return nil, fmt.Errorf("%w: truncated id", ErrCorrupt)
	}
	c.ID = string(id)
	nameLen, ok := r.u16()
	if !ok {
		return nil, fmt.Errorf("%w: truncated name", ErrCorrupt)
	}
	name, ok := r.take(int(nameLen))
	if !ok {
		return nil, fmt.Errorf("%w: truncated name", ErrCorrupt)
	}
	c.Name = string(name)
	rows32, ok := r.u32()
	if !ok {
		return nil, fmt.Errorf("%w: truncated row count", ErrCorrupt)
	}
	rows := int(rows32)
	if isDict {
		dictLen32, ok := r.u32()
		if !ok {
			return nil, fmt.Errorf("%w: truncated dictionary length", ErrCorrupt)
		}
		dictLen := int(dictLen32)
		// Every dictionary entry needs at least its 4-byte length prefix,
		// so an honest dictLen is bounded by the remaining bytes; checking
		// before allocating keeps corrupt headers from forcing huge
		// allocations.
		if dictLen > (len(body)-r.off)/4 {
			return nil, fmt.Errorf("%w: dictionary length %d exceeds payload", ErrCorrupt, dictLen)
		}
		dict := make([]string, dictLen)
		for i := range dict {
			n, ok := r.u32()
			if !ok {
				return nil, fmt.Errorf("%w: truncated dictionary entry length", ErrCorrupt)
			}
			s, ok := r.take(int(n))
			if !ok {
				return nil, fmt.Errorf("%w: truncated dictionary entry", ErrCorrupt)
			}
			dict[i] = string(s)
		}
		payload, ok := r.take(rows * 4)
		if !ok {
			return nil, fmt.Errorf("%w: truncated code payload", ErrCorrupt)
		}
		codes := make([]uint32, rows)
		for i := range codes {
			code := binary.LittleEndian.Uint32(payload[i*4:])
			if int(code) >= dictLen {
				return nil, fmt.Errorf("%w: code %d out of bounds for %d-entry dictionary", ErrCorrupt, code, dictLen)
			}
			codes[i] = code
		}
		c.Dict, c.Codes = dict, codes
		if r.off != len(body) {
			return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-r.off)
		}
		return c, nil
	}
	switch c.Type {
	case data.Float64:
		payload, ok := r.take(rows * 8)
		if !ok {
			return nil, fmt.Errorf("%w: truncated float payload", ErrCorrupt)
		}
		c.Floats = make([]float64, rows)
		for i := range c.Floats {
			c.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
		}
	case data.Int64:
		payload, ok := r.take(rows * 8)
		if !ok {
			return nil, fmt.Errorf("%w: truncated int payload", ErrCorrupt)
		}
		c.Ints = make([]int64, rows)
		for i := range c.Ints {
			c.Ints[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
		}
	case data.String:
		// Each row needs at least its 4-byte length prefix; bound rows by
		// the remaining bytes before allocating the header array.
		if rows > (len(body)-r.off)/4 {
			return nil, fmt.Errorf("%w: row count %d exceeds payload", ErrCorrupt, rows)
		}
		c.Strings = make([]string, rows)
		for i := range c.Strings {
			n, ok := r.u32()
			if !ok {
				return nil, fmt.Errorf("%w: truncated string length", ErrCorrupt)
			}
			s, ok := r.take(int(n))
			if !ok {
				return nil, fmt.Errorf("%w: truncated string payload", ErrCorrupt)
			}
			c.Strings[i] = string(s)
		}
	case data.Bool:
		payload, ok := r.take(rows)
		if !ok {
			return nil, fmt.Errorf("%w: truncated bool payload", ErrCorrupt)
		}
		c.Bools = make([]bool, rows)
		for i, v := range payload {
			if v > 1 {
				return nil, fmt.Errorf("%w: non-canonical bool byte %d", ErrCorrupt, v)
			}
			c.Bools[i] = v == 1
		}
	default:
		return nil, fmt.Errorf("%w: unknown dtype %d", ErrCorrupt, dt[0])
	}
	if r.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-r.off)
	}
	return c, nil
}
