package tier

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/data"
	"repro/internal/graph"
	"repro/internal/ml"
)

func testFrame(ids ...*data.Column) *graph.DatasetArtifact {
	return &graph.DatasetArtifact{Frame: data.MustNewFrame(ids...)}
}

func TestDiskPutGetEvict(t *testing.T) {
	d, rep, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Columns+rep.Frames+rep.Blobs+rep.Quarantined != 0 {
		t.Fatalf("fresh dir reported files: %+v", rep)
	}
	shared := data.NewFloatColumn("shared", []float64{1, 2, 3})
	only1 := data.NewIntColumn("a", []int64{4, 5, 6})
	only2 := data.NewStringColumn("b", []string{"x", "y", "z"})
	if err := d.PutFrame("v1", []*data.Column{shared, only1}); err != nil {
		t.Fatal(err)
	}
	if err := d.PutFrame("v2", []*data.Column{shared, only2}); err != nil {
		t.Fatal(err)
	}
	wantPhys := shared.SizeBytes() + only1.SizeBytes() + only2.SizeBytes()
	if d.PhysicalBytes() != wantPhys {
		t.Fatalf("physical = %d, want %d (column dedup)", d.PhysicalBytes(), wantPhys)
	}
	a, err := d.Get("v1")
	if err != nil {
		t.Fatal(err)
	}
	ds := a.(*graph.DatasetArtifact)
	if ds.Frame.NumCols() != 2 || ds.Frame.Columns()[0].ID != shared.ID ||
		ds.Frame.Columns()[1].Ints[2] != 6 {
		t.Fatalf("bad reassembly: %v", ds.Frame)
	}
	// Evicting v1 must keep the shared column (v2 references it).
	d.Evict("v1")
	if d.Has("v1") || !d.Has("v2") {
		t.Fatal("eviction scope wrong")
	}
	if d.PhysicalBytes() != shared.SizeBytes()+only2.SizeBytes() {
		t.Fatalf("physical after evict = %d", d.PhysicalBytes())
	}
	if _, err := d.Get("v2"); err != nil {
		t.Fatalf("shared column was deleted with v1: %v", err)
	}
	d.Evict("v2")
	if d.PhysicalBytes() != 0 || d.Len() != 0 {
		t.Fatalf("store not empty after evictions: %d bytes, %d artifacts",
			d.PhysicalBytes(), d.Len())
	}
}

func TestDiskBlobRoundTrip(t *testing.T) {
	d, _, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	model := &graph.ModelArtifact{
		Model:    &ml.LogisticRegression{Weights: []float64{1, 2}, Bias: 0.5},
		Quality:  0.9,
		Features: []string{"f1", "f2"},
	}
	if err := d.PutBlob("m1", model); err != nil {
		t.Fatal(err)
	}
	agg := &graph.AggregateArtifact{Value: 3.25, Text: "count"}
	if err := d.PutBlob("a1", agg); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get("m1")
	if err != nil {
		t.Fatal(err)
	}
	ma := got.(*graph.ModelArtifact)
	if ma.Quality != 0.9 || ma.Model.(*ml.LogisticRegression).Bias != 0.5 {
		t.Fatalf("model mismatch: %+v", ma)
	}
	got, err = d.Get("a1")
	if err != nil {
		t.Fatal(err)
	}
	if got.(*graph.AggregateArtifact).Value != 3.25 {
		t.Fatal("aggregate mismatch")
	}
	if a, err := d.Get("absent"); a != nil || err != nil {
		t.Fatalf("absent vertex: %v %v", a, err)
	}
}

// TestDiskRecovery verifies the boot protocol: a fresh Open over an
// existing directory rebuilds the index from verified files and serves the
// same content.
func TestDiskRecovery(t *testing.T) {
	dir := t.TempDir()
	d, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := data.NewFloatColumn("c1", []float64{1, 2})
	c2 := data.NewBoolColumn("c2", []bool{true, false})
	if err := d.PutFrame("v1", []*data.Column{c1, c2}); err != nil {
		t.Fatal(err)
	}
	if err := d.PutBlob("m1", &graph.AggregateArtifact{Value: 7}); err != nil {
		t.Fatal(err)
	}
	phys := d.PhysicalBytes()

	// Simulate a crash: no close, just reopen from the directory.
	d2, rep, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Columns != 2 || rep.Frames != 1 || rep.Blobs != 1 || rep.Quarantined != 0 {
		t.Fatalf("recovery report: %+v", rep)
	}
	if d2.PhysicalBytes() != phys {
		t.Fatalf("physical after recovery = %d, want %d", d2.PhysicalBytes(), phys)
	}
	a, err := d2.Get("v1")
	if err != nil {
		t.Fatal(err)
	}
	if a.(*graph.DatasetArtifact).Frame.Columns()[0].Floats[1] != 2 {
		t.Fatal("recovered frame content wrong")
	}
	if got, err := d2.Get("m1"); err != nil || got.(*graph.AggregateArtifact).Value != 7 {
		t.Fatalf("recovered blob wrong: %v %v", got, err)
	}
}

// TestDiskRecoveryQuarantinesCorruptFiles flips bytes in stored files and
// checks Open detects, quarantines, and refuses to serve them — and that a
// frame whose column was quarantined is quarantined too rather than served
// torn.
func TestDiskRecoveryQuarantinesCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	d, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := data.NewFloatColumn("c1", []float64{1, 2, 3})
	if err := d.PutFrame("v1", []*data.Column{c1}); err != nil {
		t.Fatal(err)
	}
	if err := d.PutBlob("m1", &graph.AggregateArtifact{Value: 7}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the column file and the blob file on disk.
	for _, path := range []string{d.colPath(c1.ID), d.blobPath("m1")} {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0xFF
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	d2, rep, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Column + blob quarantined, and the manifest referencing the bad
	// column quarantined as a consequence.
	if rep.Quarantined != 3 {
		t.Fatalf("quarantined = %d, want 3 (%+v)", rep.Quarantined, rep)
	}
	if d2.Has("v1") || d2.Has("m1") || d2.Len() != 0 || d2.PhysicalBytes() != 0 {
		t.Fatal("corrupt artifacts still indexed")
	}
	q, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	if len(q) != 3 {
		t.Fatalf("quarantine dir holds %d files, want 3", len(q))
	}
}

// TestDiskGetQuarantinesRuntimeCorruption corrupts a file after Open and
// checks Get detects it, quarantines, and reports ErrCorrupt.
func TestDiskGetQuarantinesRuntimeCorruption(t *testing.T) {
	dir := t.TempDir()
	d, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := data.NewFloatColumn("c1", []float64{1, 2, 3})
	if err := d.PutFrame("v1", []*data.Column{c1}); err != nil {
		t.Fatal(err)
	}
	path := d.colPath(c1.ID)
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get("v1"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted read not detected: %v", err)
	}
	if d.Has("v1") {
		t.Fatal("corrupt vertex still indexed after failed Get")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt column file not moved to quarantine")
	}
}

// TestDiskRecoveryCollectsOrphanColumns: column files not referenced by any
// manifest (e.g. from a crash mid-spill, before the manifest write) are
// deleted at boot.
func TestDiskRecoveryCollectsOrphanColumns(t *testing.T) {
	dir := t.TempDir()
	d, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := data.NewFloatColumn("c1", []float64{1, 2, 3})
	if err := d.PutFrame("v1", []*data.Column{c1}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-spill: a valid column file with no manifest.
	orphan := data.NewFloatColumn("orphan", []float64{9})
	enc, err := EncodeColumn(orphan)
	if err != nil {
		t.Fatal(err)
	}
	orphanPath := d.colPath(orphan.ID)
	if err := os.WriteFile(orphanPath, enc, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OrphanColumns != 1 {
		t.Fatalf("orphans = %d, want 1", rep.OrphanColumns)
	}
	if _, err := os.Stat(orphanPath); !os.IsNotExist(err) {
		t.Fatal("orphan column file not garbage-collected")
	}
}
