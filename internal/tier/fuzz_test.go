package tier

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/data"
)

// FuzzColumnCodec exercises the on-disk column codec three ways:
//
//  1. DecodeColumn must never panic and never accept non-canonical input:
//     whatever decodes must re-encode to exactly the input bytes.
//  2. A decoded column must re-decode to the same logical column.
//  3. Single-byte corruption of a valid encoding must be detected (the
//     checksum covers every byte, so any flip yields ErrCorrupt).
//
// The committed seed corpus (testdata/fuzz/FuzzColumnCodec) holds valid
// encodings of every dtype plus malformed variants; `go test` replays it on
// every run, `go test -fuzz=FuzzColumnCodec` explores beyond it.
func FuzzColumnCodec(f *testing.F) {
	for _, c := range []*data.Column{
		data.NewFloatColumn("f", []float64{1.5, math.NaN(), math.Inf(-1)}),
		data.NewIntColumn("i", []int64{-1, math.MaxInt64, 0}),
		data.NewStringColumn("s", []string{"", "héllo", "a\x00b"}),
		data.NewBoolColumn("b", []bool{true, false}),
		data.NewFloatColumn("empty", nil),
		data.NewDictColumn("d", []string{"", "aa", "bb"}, []uint32{2, 0, 1, 2}),
		data.NewStringColumn("de", []string{"x", "y", "x"}).DictEncoded(),
		data.NewDictColumn("dempty", []string{}, nil),
	} {
		enc, err := EncodeColumn(c)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc, uint16(0))
	}
	f.Add([]byte(colMagic), uint16(3))
	f.Add([]byte("CTC1\x02\x00\x00\x00\x00\x00\x00\x00\x00"), uint16(7))
	f.Add([]byte{}, uint16(0))

	f.Fuzz(func(t *testing.T, b []byte, flip uint16) {
		c, err := DecodeColumn(b)
		if err != nil {
			if c != nil {
				t.Fatal("decode returned both column and error")
			}
			return
		}
		// Canonical: accepted input re-encodes byte-identically.
		re, err := EncodeColumn(c)
		if err != nil {
			t.Fatalf("decoded column failed to encode: %v", err)
		}
		if !bytes.Equal(re, b) {
			t.Fatalf("non-canonical accept: %d in, %d out", len(b), len(re))
		}
		// Round trip: decode(encode(c)) preserves the logical column.
		c2, err := DecodeColumn(re)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if c2.ID != c.ID || c2.Name != c.Name || c2.Type != c.Type || c2.Len() != c.Len() {
			t.Fatal("round trip changed identity")
		}
		// Corruption detection: flipping any one byte must be caught.
		bad := append([]byte(nil), b...)
		bad[int(flip)%len(bad)] ^= byte(flip>>8) | 1 // nonzero mask
		if _, err := DecodeColumn(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("single-byte corruption at %d undetected", int(flip)%len(bad))
		}
	})
}
