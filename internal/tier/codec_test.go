package tier

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"

	"repro/internal/data"
)

func sampleColumns() []*data.Column {
	f := data.NewFloatColumn("f", []float64{1.5, math.NaN(), -0, math.Inf(1)})
	i := data.NewIntColumn("i", []int64{-1, 0, 42, math.MaxInt64})
	s := data.NewStringColumn("s", []string{"", "a", "héllo", "x\x00y"})
	b := data.NewBoolColumn("b", []bool{true, false, true, true})
	empty := data.NewFloatColumn("empty", nil)
	d := data.NewDictColumn("d", []string{"", "aa", "bb"}, []uint32{2, 0, 1, 2})
	de := data.NewStringColumn("de", []string{"x", "y", "x", "x"}).DictEncoded()
	dempty := data.NewDictColumn("dempty", []string{}, nil)
	return []*data.Column{f, i, s, b, empty, d, de, dempty}
}

func TestColumnCodecRoundTrip(t *testing.T) {
	for _, c := range sampleColumns() {
		enc, err := EncodeColumn(c)
		if err != nil {
			t.Fatalf("encode %s: %v", c.Name, err)
		}
		got, err := DecodeColumn(enc)
		if err != nil {
			t.Fatalf("decode %s: %v", c.Name, err)
		}
		if got.ID != c.ID || got.Name != c.Name || got.Type != c.Type || got.Len() != c.Len() {
			t.Fatalf("%s: identity mismatch: got %+v", c.Name, got)
		}
		for r := 0; r < c.Len(); r++ {
			if c.Type == data.Float64 {
				if math.Float64bits(got.Floats[r]) != math.Float64bits(c.Floats[r]) {
					t.Fatalf("%s row %d: float bits differ", c.Name, r)
				}
				continue
			}
			if got.StringAt(r) != c.StringAt(r) {
				t.Fatalf("%s row %d: %q != %q", c.Name, r, got.StringAt(r), c.StringAt(r))
			}
		}
		// Canonical: re-encoding the decoded column is byte-identical.
		re, err := EncodeColumn(got)
		if err != nil {
			t.Fatalf("re-encode %s: %v", c.Name, err)
		}
		if !bytes.Equal(enc, re) {
			t.Fatalf("%s: encoding not canonical", c.Name)
		}
	}
}

func TestColumnCodecDict(t *testing.T) {
	c := data.NewDictColumn("d", []string{"", "north", "south"}, []uint32{1, 2, 0, 1, 1})
	enc, err := EncodeColumn(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeColumn(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Representation survives the disk round trip: the decoded column is
	// still dictionary-encoded, with identical dictionary and codes.
	if !got.IsDict() {
		t.Fatal("decoded column lost dictionary encoding")
	}
	if len(got.Dict) != len(c.Dict) || len(got.Codes) != len(c.Codes) {
		t.Fatalf("dict/codes length mismatch: %d/%d vs %d/%d",
			len(got.Dict), len(got.Codes), len(c.Dict), len(c.Codes))
	}
	for i := range c.Dict {
		if got.Dict[i] != c.Dict[i] {
			t.Fatalf("dict entry %d: %q != %q", i, got.Dict[i], c.Dict[i])
		}
	}
	for i := range c.Codes {
		if got.Codes[i] != c.Codes[i] {
			t.Fatalf("code %d: %d != %d", i, got.Codes[i], c.Codes[i])
		}
	}

	// Out-of-bounds codes are rejected on encode...
	bad := data.NewDictColumn("bad", []string{"a"}, []uint32{1})
	if _, err := EncodeColumn(bad); err == nil {
		t.Fatal("encode accepted out-of-bounds code")
	}
	// ...and on decode: corrupt the last code in place and refresh the CRC
	// so only the structural check can catch it.
	tail := len(enc) - 8 // last code (4 bytes) + crc (4 bytes)
	forged := append([]byte(nil), enc[:len(enc)-4]...)
	binary.LittleEndian.PutUint32(forged[tail:], 99)
	forged = binary.LittleEndian.AppendUint32(forged, crc32.Checksum(forged, castagnoli))
	if _, err := DecodeColumn(forged); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decode accepted out-of-bounds code (err=%v)", err)
	}

	// The dict flag is only valid on String; a forged dict-Float64 dtype
	// must be rejected even with a valid checksum.
	forged = append([]byte(nil), enc[:len(enc)-4]...)
	forged[len(colMagic)] = dictDType | byte(data.Float64)
	forged = binary.LittleEndian.AppendUint32(forged, crc32.Checksum(forged, castagnoli))
	if _, err := DecodeColumn(forged); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("decode accepted dict flag on float dtype (err=%v)", err)
	}
}

func TestColumnCodecDetectsCorruption(t *testing.T) {
	c := data.NewFloatColumn("f", []float64{1, 2, 3, 4, 5})
	enc, err := EncodeColumn(c)
	if err != nil {
		t.Fatal(err)
	}
	// Every single-byte flip must be detected.
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x41
		if _, err := DecodeColumn(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d not detected (err=%v)", i, err)
		}
	}
	// Truncation at every length must be detected.
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeColumn(enc[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes not detected (err=%v)", n, err)
		}
	}
	// Trailing garbage must be detected.
	if _, err := DecodeColumn(append(append([]byte(nil), enc...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte not detected (err=%v)", err)
	}
}

func TestManifestCodecRoundTrip(t *testing.T) {
	man := manifest{colIDs: []string{"c1", "c2"}, names: []string{"a", "b"}}
	enc, err := encodeManifest("vertex/with weird:chars", man)
	if err != nil {
		t.Fatal(err)
	}
	vid, got, err := decodeManifest(enc)
	if err != nil {
		t.Fatal(err)
	}
	if vid != "vertex/with weird:chars" || len(got.colIDs) != 2 ||
		got.colIDs[1] != "c2" || got.names[0] != "a" {
		t.Fatalf("round trip mismatch: %q %+v", vid, got)
	}
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0xFF
		if _, _, err := decodeManifest(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("manifest flip at %d not detected", i)
		}
	}
}
