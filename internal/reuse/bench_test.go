package reuse

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkPlanners(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, nodes := range []int{500, 1000, 2000} {
		w, costs := randomWorkload(rng, nodes)
		for _, p := range []Planner{Linear{}, Helix{}} {
			b.Run(fmt.Sprintf("%s/%d", p.Name(), nodes), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p.Plan(w, costs)
				}
			})
		}
	}
}

func BenchmarkBackwardPrune(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	w, costs := randomWorkload(rng, 2000)
	plan := Linear{}.Plan(w, costs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		backwardPrune(w, plan.Reuse)
	}
}

func BenchmarkGatherCostsScaling(b *testing.B) {
	// GatherCosts is on the optimize hot path; it must stay linear.
	rng := rand.New(rand.NewSource(3))
	for _, nodes := range []int{500, 2000} {
		w, _ := randomWorkload(rng, nodes)
		b.Run(fmt.Sprintf("%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Build cost maps directly from the DAG shape (the EG
				// lookup path is covered by core benchmarks).
				c := Costs{Compute: make(map[string]float64, w.Len()), Load: make(map[string]float64, w.Len())}
				for _, n := range w.Nodes() {
					c.Compute[n.ID] = 1
					c.Load[n.ID] = 2
				}
			}
		})
	}
}
