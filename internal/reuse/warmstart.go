package reuse

import (
	"repro/internal/eg"
	"repro/internal/graph"
	"repro/internal/store"
)

// WarmstartCandidate describes a donor model found in the Experiment Graph
// for a model-training vertex of the incoming workload.
type WarmstartCandidate struct {
	// VertexID is the workload vertex whose training will be
	// warmstarted.
	VertexID string
	// DonorID is the EG vertex holding the donor model.
	DonorID string
	// Quality is the donor's evaluation score.
	Quality float64
}

// FindWarmstarts scans the workload DAG for model-training operations that
// (a) the user allowed to warmstart, (b) are not already being loaded by
// the plan, and returns the best donor per §6.2: a materialized model in
// EG of the same learner kind trained on the same input artifact, with the
// highest quality among candidates.
func FindWarmstarts(w *graph.DAG, g *eg.Graph, st *store.Manager, plan *Plan) []WarmstartCandidate {
	var out []WarmstartCandidate
	for _, n := range w.Nodes() {
		if n.Kind != graph.ModelKind || n.Op == nil || n.Computed {
			continue
		}
		if plan != nil && plan.Reuse[n.ID] {
			continue // the model itself is being loaded; no training happens
		}
		wop, ok := n.Op.(graph.WarmstartableOp)
		if !ok || !wop.CanWarmstart() {
			continue
		}
		if len(n.Parents) != 1 {
			continue
		}
		trainInput := g.Vertex(n.Parents[0].ID)
		if trainInput == nil {
			continue
		}
		best := WarmstartCandidate{VertexID: n.ID, Quality: -1}
		for _, childID := range trainInput.Children {
			if childID == n.ID {
				continue
			}
			cand := g.Vertex(childID)
			if cand == nil || cand.Kind != graph.ModelKind || !cand.Materialized {
				continue
			}
			if cand.Meta["model"] != wop.ModelKind() {
				continue
			}
			if !st.Has(childID) {
				continue
			}
			if cand.Quality > best.Quality {
				best.DonorID = childID
				best.Quality = cand.Quality
			}
		}
		if best.DonorID != "" {
			out = append(out, best)
		}
	}
	return out
}

// ApplyWarmstarts fetches each donor's model from the store and installs it
// on the workload vertex's training operation. It returns how many donors
// were installed.
func ApplyWarmstarts(w *graph.DAG, st *store.Manager, cands []WarmstartCandidate) int {
	applied := 0
	for _, c := range cands {
		n := w.Node(c.VertexID)
		if n == nil || n.Op == nil {
			continue
		}
		wop, ok := n.Op.(graph.WarmstartableOp)
		if !ok {
			continue
		}
		content := st.Get(c.DonorID)
		ma, ok := content.(*graph.ModelArtifact)
		if !ok || ma.Model == nil {
			continue
		}
		wop.SetDonor(ma.Model)
		n.Warmstarted = true
		applied++
	}
	return applied
}
