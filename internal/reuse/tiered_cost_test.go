package reuse

import (
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/eg"
	"repro/internal/graph"
	"repro/internal/store"
	"repro/internal/tier"
)

// TestPlannerPricesArtifactTier: the same artifact flips the planner's
// load-vs-compute decision when it moves between tiers. With a 1 ms compute
// cost, the memory-tier load (~20 µs) wins and the vertex is reused; after
// demotion the disk-tier load (~3 ms latency floor) loses and the planner
// recomputes — Cl(v) follows the bytes.
func TestPlannerPricesArtifactTier(t *testing.T) {
	build := func() (*graph.DAG, *graph.Node) {
		w := graph.NewDAG()
		s := w.AddSource("s", &graph.AggregateArtifact{})
		a := w.Apply(s, stubOp{"a", graph.DatasetKind})
		w.Apply(a, stubOp{"t", graph.DatasetKind})
		return w, a
	}
	w, a := build()
	a.ComputeTime = time.Millisecond
	a.SizeBytes = 100
	a.Content = &graph.AggregateArtifact{Value: 1}

	g := eg.New()
	g.Merge(w)
	d, _, err := tier.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st := store.NewTiered(cost.Memory(), store.Options{Disk: d})
	if err := st.Put(a.ID, a.Content); err != nil {
		t.Fatal(err)
	}
	g.SetMaterialized(a.ID, true)

	// Memory-resident: Cl ≈ 20 µs < Ci = 1 ms → load.
	w2, a2 := build()
	costs := GatherCosts(w2, g, st)
	if cl, ci := costs.Load[a2.ID], costs.Compute[a2.ID]; cl >= ci {
		t.Fatalf("memory-resident: Cl=%v should beat Ci=%v", cl, ci)
	}
	if plan := (Linear{}).Plan(w2, costs); !plan.Reuse[a2.ID] {
		t.Fatal("planner should load the memory-resident artifact")
	}

	// Demoted to disk: Cl ≈ 3 ms > Ci = 1 ms → compute.
	if err := st.Demote(a.ID); err != nil {
		t.Fatal(err)
	}
	w3, a3 := build()
	costs = GatherCosts(w3, g, st)
	if cl, ci := costs.Load[a3.ID], costs.Compute[a3.ID]; cl <= ci {
		t.Fatalf("disk-resident: Cl=%v should exceed Ci=%v", cl, ci)
	}
	if plan := (Linear{}).Plan(w3, costs); plan.Reuse[a3.ID] {
		t.Fatal("planner should recompute rather than load from disk")
	}

	// A slow vertex flips back: Ci = 1 s ≫ Cl_disk → load from disk
	// (Cl_disk(v) < Cr(v), the tentpole's planner-integration criterion).
	g.Vertex(a.ID).ComputeTime = time.Second
	w4, a4 := build()
	costs = GatherCosts(w4, g, st)
	if plan := (Linear{}).Plan(w4, costs); !plan.Reuse[a4.ID] {
		t.Fatal("planner should load the expensive vertex from disk")
	}
}
