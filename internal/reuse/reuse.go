// Package reuse implements the paper's reuse planners (§6): the linear-time
// forward/backward-pass algorithm (Algorithm 2 plus backward pruning), the
// Helix polynomial-time max-flow baseline, and the ALL_M / ALL_C baselines
// of §7.4, together with warmstart candidate search (§6.2).
package reuse

import (
	"math"

	"repro/internal/eg"
	"repro/internal/graph"
	"repro/internal/maxflow"
	"repro/internal/store"
)

// Costs holds the per-vertex inputs of the reuse decision for one workload
// DAG, in seconds. Infinite values follow §6.1: Cl=∞ for unmaterialized or
// unknown artifacts, Ci=∞ for artifacts EG has never seen, Ci=0 for
// vertices already computed on the client.
type Costs struct {
	Compute map[string]float64 // Ci(v)
	Load    map[string]float64 // Cl(v)
}

// GatherCosts derives Costs for a workload DAG from the Experiment Graph
// and the storage manager.
func GatherCosts(w *graph.DAG, g *eg.Graph, st *store.Manager) Costs {
	c := Costs{
		Compute: make(map[string]float64, w.Len()),
		Load:    make(map[string]float64, w.Len()),
	}
	for _, n := range w.Nodes() {
		ci := math.Inf(1)
		cl := math.Inf(1)
		if n.Computed {
			ci = 0
		}
		if v := g.Vertex(n.ID); v != nil {
			if !n.Computed {
				if n.Kind == graph.SupernodeKind {
					ci = 0 // supernodes carry no computation
				} else {
					ci = v.ComputeTime.Seconds()
				}
			}
			if v.Materialized && st.Has(n.ID) {
				// Price Cl(v) with the artifact's actual tier: a
				// memory-resident artifact loads at memory speed, a demoted
				// one at disk speed, so the load-vs-compute comparison tracks
				// where the bytes really are.
				cl = st.LoadCostFor(n.ID, v.SizeBytes)
			}
		} else if n.Kind == graph.SupernodeKind {
			ci = 0
		}
		c.Compute[n.ID] = ci
		c.Load[n.ID] = cl
	}
	return c
}

// Plan is the output of a reuse planner: which vertices to load from EG.
// Vertices not in Reuse are computed (or already present on the client).
type Plan struct {
	// Reuse holds the final (backward-pruned) set Rp of vertex IDs to
	// load from the Experiment Graph.
	Reuse map[string]bool
	// Candidates holds the pre-backward-pass load candidate set: every
	// vertex the cost comparison picked for loading. Candidates minus
	// Reuse is what the backward pass dropped — the explain layer turns
	// this into per-vertex reason codes.
	Candidates map[string]bool
	// RecreationCost is the forward-pass cost estimate per vertex in
	// seconds (diagnostics and tests).
	RecreationCost map[string]float64
	// PredictedLoad is the Cl(v) the cost comparison used, in seconds, for
	// every vertex in Reuse — the prediction the calibration layer checks
	// against the measured fetch time.
	PredictedLoad map[string]float64
	// PredictedCompute is the finite Ci(v) the comparison used, in
	// seconds, for every computable vertex the plan executes (vertices the
	// EG has never seen carry Ci = ∞ and are omitted).
	PredictedCompute map[string]float64
	// Stats counts the planner's decisions, feeding the server's
	// observability counters.
	Stats PlanStats
}

// withPredictions fills PredictedLoad/PredictedCompute from the planning
// costs so executors can annotate fetches with the exact numbers the
// decision used.
func (p *Plan) withPredictions(w *graph.DAG, costs Costs) *Plan {
	p.PredictedLoad = make(map[string]float64, len(p.Reuse))
	p.PredictedCompute = make(map[string]float64)
	for id := range p.Reuse {
		if cl := costs.Load[id]; !math.IsInf(cl, 1) {
			p.PredictedLoad[id] = cl
		}
	}
	for _, n := range w.Nodes() {
		if n.IsSource() || n.Computed || n.Kind == graph.SupernodeKind || p.Reuse[n.ID] {
			continue
		}
		if ci, ok := costs.Compute[n.ID]; ok && !math.IsInf(ci, 1) && ci > 0 {
			p.PredictedCompute[n.ID] = ci
		}
	}
	return p
}

// PlanStats counts one planning pass's decisions, reason-coded so the
// split is visible in /v1/stats and /metrics. Planners fill the fields
// that apply to them; the zero value means "not tracked".
type PlanStats struct {
	// CandidateLoads is how many vertices the cost comparison picked for
	// loading before the backward pass.
	CandidateLoads int
	// PrunedOffPath is how many load candidates the backward pass dropped
	// as off the execution path (reason code "pruned-off-path").
	PrunedOffPath int
	// PrunedByCost is how many computable vertices had a loadable
	// artifact (finite Cl) that the cost comparison rejected because
	// recomputing was no more expensive (reason code "compute-by-cost").
	PrunedByCost int
	// PrunedNotMaterialized is how many computable vertices had no
	// loadable artifact at all — Cl = ∞ because EG never materialized
	// them (reason code "compute-not-materialized").
	PrunedNotMaterialized int
	// Computes is how many computable workload vertices (non-source, not
	// already on the client) the final plan does not cover with a load.
	Computes int
}

// planStats derives reason-coded PlanStats from the per-vertex costs, the
// pre-prune candidate set, and the final reuse set.
func planStats(w *graph.DAG, costs Costs, candidates, final map[string]bool) PlanStats {
	st := PlanStats{
		CandidateLoads: len(candidates),
		PrunedOffPath:  len(candidates) - len(final),
	}
	for _, n := range w.Nodes() {
		if n.IsSource() || n.Computed || n.Kind == graph.SupernodeKind || final[n.ID] {
			continue
		}
		st.Computes++
		if candidates[n.ID] {
			continue // counted in PrunedOffPath
		}
		if math.IsInf(costs.Load[n.ID], 1) {
			st.PrunedNotMaterialized++
		} else {
			st.PrunedByCost++
		}
	}
	return st
}

// Planner generates reuse plans for workload DAGs.
type Planner interface {
	// Name labels the planner in experiment output ("LN", "HL", "ALL_M",
	// "ALL_C").
	Name() string
	// Plan decides which vertices of w to load given costs.
	Plan(w *graph.DAG, costs Costs) *Plan
}

// Linear is the paper's linear-time reuse algorithm (Algorithm 2 +
// backward pass). Complexity O(|V|+|E|) in the workload DAG.
type Linear struct{}

// Name implements Planner.
func (Linear) Name() string { return "LN" }

// Plan implements Planner.
func (Linear) Plan(w *graph.DAG, costs Costs) *Plan {
	order := w.TopoOrder()
	rec := make(map[string]float64, len(order))
	reuse := make(map[string]bool)
	// Forward pass (Algorithm 2).
	for _, n := range order {
		if n.IsSource() || n.Computed {
			rec[n.ID] = 0
			continue
		}
		var pcosts float64
		for _, p := range n.Parents {
			pcosts += rec[p.ID]
		}
		exec := costs.Compute[n.ID] + pcosts
		if cl := costs.Load[n.ID]; cl < exec {
			rec[n.ID] = cl
			reuse[n.ID] = true
		} else {
			rec[n.ID] = exec
		}
	}
	final := backwardPrune(w, reuse)
	p := &Plan{Reuse: final, Candidates: reuse, RecreationCost: rec, Stats: planStats(w, costs, reuse, final)}
	return p.withPredictions(w, costs)
}

// backwardPrune walks from the terminals toward the sources, keeping only
// reuse vertices actually on the execution path: once a reuse vertex is
// reached, its ancestors need not be visited (§6.1 backward-pass).
func backwardPrune(w *graph.DAG, reuse map[string]bool) map[string]bool {
	final := make(map[string]bool)
	visited := make(map[string]bool)
	stack := w.Terminals()
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[n.ID] {
			continue
		}
		visited[n.ID] = true
		if reuse[n.ID] {
			final[n.ID] = true
			continue // stop traversing parents
		}
		if n.Computed {
			continue // already on the client; ancestors not needed
		}
		stack = append(stack, n.Parents...)
	}
	return final
}

// bigM stands in for infinite capacities in the flow network; any finite
// cost in the experiments is far below it.
const bigM = 1e18

// Helix is the polynomial-time baseline: it folds parent recreation costs
// into each vertex (the same DP as the forward pass), reduces the
// load-vs-compute decision to a minimum s-t cut, and solves it with
// Edmonds–Karp (§7.1; see DESIGN.md for the substitution note). It yields
// the same plan as Linear at polynomial cost.
type Helix struct{}

// Name implements Planner.
func (Helix) Name() string { return "HL" }

// Plan implements Planner.
func (Helix) Plan(w *graph.DAG, costs Costs) *Plan {
	order := w.TopoOrder()
	n := len(order)
	// Network: 0 = source S, 1 = sink T, vertex i at index i+2.
	idx := make(map[string]int, n)
	for i, node := range order {
		idx[node.ID] = i + 2
	}
	g := maxflow.New(n + 2)
	rec := make(map[string]float64, n)
	// The DP mirrors the forward pass so the PSP instance carries the
	// same execution costs the paper's reduction would.
	execCost := make([]float64, n)
	for i, node := range order {
		if node.IsSource() || node.Computed {
			rec[node.ID] = 0
			execCost[i] = 0
			continue
		}
		var pcosts float64
		for _, p := range node.Parents {
			pcosts += rec[p.ID]
		}
		exec := costs.Compute[node.ID] + pcosts
		execCost[i] = exec
		if cl := costs.Load[node.ID]; cl < exec {
			rec[node.ID] = cl
		} else {
			rec[node.ID] = exec
		}
	}
	for i, node := range order {
		exec := execCost[i]
		if math.IsInf(exec, 1) {
			exec = bigM
		}
		cl := costs.Load[node.ID]
		if math.IsInf(cl, 1) {
			cl = bigM
		}
		// Cutting S→v (cap = execution cost) selects "compute";
		// cutting v→T (cap = load cost) selects "load".
		g.AddEdge(0, i+2, exec)
		g.AddEdge(i+2, 1, cl)
	}
	g.MaxFlow(0, 1)
	side := g.MinCutReachable(0)
	reuse := make(map[string]bool)
	for i, node := range order {
		if node.IsSource() || node.Computed {
			continue
		}
		// Reachable from S in the residual means the S→v edge is not
		// saturated, i.e. the v→T (load) edge was cut: load v.
		if side[i+2] && !math.IsInf(costs.Load[node.ID], 1) {
			reuse[node.ID] = true
		}
	}
	final := backwardPrune(w, reuse)
	p := &Plan{Reuse: final, Candidates: reuse, RecreationCost: rec, Stats: planStats(w, costs, reuse, final)}
	return p.withPredictions(w, costs)
}

// AllMaterialized loads every materialized vertex regardless of cost
// (§7.4's ALL_M).
type AllMaterialized struct{}

// Name implements Planner.
func (AllMaterialized) Name() string { return "ALL_M" }

// Plan implements Planner.
func (AllMaterialized) Plan(w *graph.DAG, costs Costs) *Plan {
	reuse := make(map[string]bool)
	for _, n := range w.Nodes() {
		if !n.Computed && !math.IsInf(costs.Load[n.ID], 1) {
			reuse[n.ID] = true
		}
	}
	final := backwardPrune(w, reuse)
	p := &Plan{Reuse: final, Candidates: reuse, Stats: planStats(w, costs, reuse, final)}
	return p.withPredictions(w, costs)
}

// AllCompute never reuses anything (§7.4's ALL_C, the no-reuse baseline).
type AllCompute struct{}

// Name implements Planner.
func (AllCompute) Name() string { return "ALL_C" }

// Plan implements Planner.
func (AllCompute) Plan(w *graph.DAG, costs Costs) *Plan {
	none := map[string]bool{}
	p := &Plan{Reuse: none, Candidates: none, Stats: planStats(w, costs, none, none)}
	return p.withPredictions(w, costs)
}
