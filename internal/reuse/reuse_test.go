package reuse

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/eg"
	"repro/internal/graph"
	"repro/internal/store"
)

type stubOp struct {
	name string
	kind graph.Kind
}

func (o stubOp) Name() string        { return o.name }
func (o stubOp) Hash() string        { return graph.OpHash(o.name, "") }
func (o stubOp) OutKind() graph.Kind { return o.kind }
func (o stubOp) Run([]graph.Artifact) (graph.Artifact, error) {
	return &graph.AggregateArtifact{}, nil
}

// figure3 reconstructs the worked example of Figure 3 in the paper.
// Expected: forward-pass selects {v1, v3}; backward-pass prunes to {v3}.
func figure3() (w *graph.DAG, costs Costs, v1, v2, v3, terminal *graph.Node) {
	w = graph.NewDAG()
	content := &graph.AggregateArtifact{}
	s1 := w.AddSource("s1", content)
	s2 := w.AddSource("s2", content)
	s3 := w.AddSource("s3", content)

	nA := w.Apply(s1, stubOp{"A", graph.DatasetKind})       // unmaterialized, Ci=10
	v1 = w.Apply(s2, stubOp{"v1", graph.DatasetKind})       // materialized, ⟨10,5⟩
	v2 = w.Combine(stubOp{"v2", graph.DatasetKind}, nA, v1) // materialized, ⟨1,17⟩
	nC := w.Apply(s3, stubOp{"C", graph.DatasetKind})       // computed on client, ⟨0,∞⟩
	nC.Content = content
	nC.Computed = true
	v3 = w.Combine(stubOp{"v3", graph.DatasetKind}, v2, nC) // materialized, ⟨5,20⟩
	terminal = w.Apply(v3, stubOp{"T", graph.DatasetKind})  // not in EG

	inf := math.Inf(1)
	costs = Costs{Compute: map[string]float64{}, Load: map[string]float64{}}
	for _, n := range w.Nodes() {
		costs.Compute[n.ID] = inf
		costs.Load[n.ID] = inf
	}
	costs.Compute[nA.ID] = 10
	costs.Compute[v1.ID] = 10
	costs.Load[v1.ID] = 5
	costs.Compute[v2.ID] = 1
	costs.Load[v2.ID] = 17
	costs.Compute[nC.ID] = 0
	costs.Compute[v3.ID] = 5
	costs.Load[v3.ID] = 20
	for _, n := range w.Nodes() {
		if n.Kind == graph.SupernodeKind {
			costs.Compute[n.ID] = 0
		}
	}
	return w, costs, v1, v2, v3, terminal
}

func TestLinearReproducesFigure3(t *testing.T) {
	w, costs, v1, v2, v3, _ := figure3()
	plan := Linear{}.Plan(w, costs)
	if plan.Reuse[v1.ID] {
		t.Error("v1 must be pruned by the backward pass")
	}
	if plan.Reuse[v2.ID] {
		t.Error("v2 must be computed (exec 16 < load 17)")
	}
	if !plan.Reuse[v3.ID] {
		t.Error("v3 must be loaded (exec 21 > load 20)")
	}
	if got := plan.RecreationCost[v2.ID]; got != 16 {
		t.Errorf("T(v2)=%v, want 16", got)
	}
	if got := plan.RecreationCost[v3.ID]; got != 20 {
		t.Errorf("T(v3)=%v, want 20", got)
	}
	if got := plan.RecreationCost[v1.ID]; got != 5 {
		t.Errorf("T(v1)=%v, want 5 (forward pass loads it)", got)
	}
}

func TestHelixMatchesLinearOnFigure3(t *testing.T) {
	w, costs, _, _, _, _ := figure3()
	lp := Linear{}.Plan(w, costs)
	hp := Helix{}.Plan(w, costs)
	if len(lp.Reuse) != len(hp.Reuse) {
		t.Fatalf("plan sizes differ: LN=%v HL=%v", lp.Reuse, hp.Reuse)
	}
	for id := range lp.Reuse {
		if !hp.Reuse[id] {
			t.Errorf("HL missing reuse vertex %s", id)
		}
	}
}

// randomWorkload builds a DAG with the given node count plus random costs,
// mimicking the §7.4 synthetic-workload construction.
func randomWorkload(rng *rand.Rand, nodes int) (*graph.DAG, Costs) {
	w := graph.NewDAG()
	content := &graph.AggregateArtifact{}
	var pool []*graph.Node
	nSources := 1 + rng.Intn(3)
	for i := 0; i < nSources; i++ {
		pool = append(pool, w.AddSource(fmt.Sprintf("s%d", i), content))
	}
	for i := 0; i < nodes; i++ {
		op := stubOp{fmt.Sprintf("op%d", i), graph.DatasetKind}
		if rng.Float64() < 0.2 && len(pool) >= 2 {
			a := pool[rng.Intn(len(pool))]
			b := pool[rng.Intn(len(pool))]
			if a != b {
				pool = append(pool, w.Combine(op, a, b))
				continue
			}
		}
		parent := pool[rng.Intn(len(pool))]
		pool = append(pool, w.Apply(parent, op))
	}
	inf := math.Inf(1)
	costs := Costs{Compute: map[string]float64{}, Load: map[string]float64{}}
	for _, n := range w.Nodes() {
		switch {
		case n.IsSource():
			costs.Compute[n.ID] = 0
			costs.Load[n.ID] = inf
		case n.Kind == graph.SupernodeKind:
			costs.Compute[n.ID] = 0
			costs.Load[n.ID] = inf
		default:
			costs.Compute[n.ID] = rng.Float64() * 10
			if rng.Float64() < 0.4 { // materialized
				costs.Load[n.ID] = rng.Float64() * 20
			} else {
				costs.Load[n.ID] = inf
			}
		}
	}
	return w, costs
}

func TestHelixMatchesLinearOnRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		w, costs := randomWorkload(rng, 5+rng.Intn(60))
		lp := Linear{}.Plan(w, costs)
		hp := Helix{}.Plan(w, costs)
		if len(lp.Reuse) != len(hp.Reuse) {
			t.Fatalf("trial %d: sizes differ LN=%d HL=%d", trial, len(lp.Reuse), len(hp.Reuse))
		}
		for id := range lp.Reuse {
			if !hp.Reuse[id] {
				t.Fatalf("trial %d: HL plan differs at %s", trial, id)
			}
		}
	}
}

func TestLinearNeverLoadsUnmaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		w, costs := randomWorkload(rng, 40)
		plan := Linear{}.Plan(w, costs)
		for id := range plan.Reuse {
			if math.IsInf(costs.Load[id], 1) {
				t.Fatalf("trial %d: plan loads unmaterialized vertex %s", trial, id)
			}
		}
	}
}

func TestBackwardPruneStopsAtReusedVertex(t *testing.T) {
	// chain: s -> a -> b -> t, both a and b materialized and cheap to
	// load. Forward pass picks both; backward keeps only b.
	w := graph.NewDAG()
	s := w.AddSource("s", &graph.AggregateArtifact{})
	a := w.Apply(s, stubOp{"a", graph.DatasetKind})
	b := w.Apply(a, stubOp{"b", graph.DatasetKind})
	tn := w.Apply(b, stubOp{"t", graph.DatasetKind})
	inf := math.Inf(1)
	costs := Costs{
		Compute: map[string]float64{a.ID: 10, b.ID: 10, tn.ID: 1},
		Load:    map[string]float64{a.ID: 1, b.ID: 1, tn.ID: inf},
	}
	plan := Linear{}.Plan(w, costs)
	if plan.Reuse[a.ID] || !plan.Reuse[b.ID] {
		t.Errorf("want reuse only b, got %v", plan.Reuse)
	}
}

func TestAllMaterializedAndAllCompute(t *testing.T) {
	w, costs, v1, v2, v3, _ := figure3()
	am := AllMaterialized{}.Plan(w, costs)
	// ALL_M loads every materialized vertex on the execution path; the
	// backward prune keeps the load frontier {v3}.
	if !am.Reuse[v3.ID] {
		t.Errorf("ALL_M should reuse v3: %v", am.Reuse)
	}
	if am.Reuse[v1.ID] || am.Reuse[v2.ID] {
		t.Errorf("ALL_M reuse set should be pruned to the frontier: %v", am.Reuse)
	}
	ac := AllCompute{}.Plan(w, costs)
	if len(ac.Reuse) != 0 {
		t.Errorf("ALL_C must not reuse: %v", ac.Reuse)
	}
}

func TestGatherCosts(t *testing.T) {
	w := graph.NewDAG()
	s := w.AddSource("s", &graph.AggregateArtifact{})
	a := w.Apply(s, stubOp{"a", graph.DatasetKind})
	b := w.Apply(a, stubOp{"b", graph.DatasetKind})
	a.ComputeTime = 2 * time.Second
	a.SizeBytes = 1 << 20
	a.Content = &graph.AggregateArtifact{Value: 1}
	b.ComputeTime = time.Second
	b.SizeBytes = 100

	g := eg.New()
	g.Merge(w)
	st := store.New(cost.Memory())
	if err := st.Put(a.ID, a.Content); err != nil {
		t.Fatal(err)
	}
	g.SetMaterialized(a.ID, true)

	// Fresh incoming workload: same shape plus one unseen op.
	w2 := graph.NewDAG()
	s2 := w2.AddSource("s", &graph.AggregateArtifact{})
	a2 := w2.Apply(s2, stubOp{"a", graph.DatasetKind})
	b2 := w2.Apply(a2, stubOp{"b", graph.DatasetKind})
	c2 := w2.Apply(b2, stubOp{"new", graph.DatasetKind})
	costs := GatherCosts(w2, g, st)

	if got := costs.Compute[a2.ID]; got != 2 {
		t.Errorf("Ci(a)=%v, want 2", got)
	}
	if math.IsInf(costs.Load[a2.ID], 1) {
		t.Error("Cl(a) should be finite (materialized)")
	}
	if !math.IsInf(costs.Load[b2.ID], 1) {
		t.Error("Cl(b) should be ∞ (in EG, unmaterialized)")
	}
	if got := costs.Compute[b2.ID]; got != 1 {
		t.Errorf("Ci(b)=%v, want 1", got)
	}
	if !math.IsInf(costs.Compute[c2.ID], 1) || !math.IsInf(costs.Load[c2.ID], 1) {
		t.Error("unknown vertex must have Ci=Cl=∞")
	}
	if got := costs.Compute[s2.ID]; got != 0 {
		t.Errorf("Ci(source)=%v, want 0 (computed on client)", got)
	}
}

func TestPlanExposesPredictedCosts(t *testing.T) {
	// s(source) -> b -> c; b materialized and cheap to load, c must compute.
	w := graph.NewDAG()
	s := w.AddSource("s", &graph.AggregateArtifact{})
	b := w.Apply(s, stubOp{"b", graph.DatasetKind})
	c := w.Apply(b, stubOp{"c", graph.DatasetKind})
	inf := math.Inf(1)
	costs := Costs{
		Compute: map[string]float64{b.ID: 5, c.ID: 2},
		Load:    map[string]float64{b.ID: 0.5, c.ID: inf},
	}
	plan := Linear{}.Plan(w, costs)
	if !plan.Reuse[b.ID] {
		t.Fatalf("expected b reused, got %v", plan.Reuse)
	}
	if got := plan.PredictedLoad[b.ID]; got != 0.5 {
		t.Errorf("PredictedLoad[b] = %v, want 0.5", got)
	}
	if _, ok := plan.PredictedLoad[c.ID]; ok {
		t.Error("PredictedLoad should only cover reused vertices")
	}
	if got := plan.PredictedCompute[c.ID]; got != 2 {
		t.Errorf("PredictedCompute[c] = %v, want 2", got)
	}
	if _, ok := plan.PredictedCompute[b.ID]; ok {
		t.Error("PredictedCompute must not cover reused vertices")
	}
}

func TestAllComputePlanPredictions(t *testing.T) {
	w := graph.NewDAG()
	s := w.AddSource("s", &graph.AggregateArtifact{})
	b := w.Apply(s, stubOp{"b", graph.DatasetKind})
	costs := Costs{
		Compute: map[string]float64{b.ID: 3},
		Load:    map[string]float64{b.ID: 0.1},
	}
	plan := AllCompute{}.Plan(w, costs)
	if len(plan.PredictedLoad) != 0 {
		t.Errorf("ALL_C PredictedLoad = %v, want empty", plan.PredictedLoad)
	}
	if got := plan.PredictedCompute[b.ID]; got != 3 {
		t.Errorf("PredictedCompute[b] = %v, want 3", got)
	}
}
