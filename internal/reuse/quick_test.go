package reuse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// planCost evaluates the total cost of executing w under a given reuse set
// with the forward-pass DP semantics: loaded vertices cost Cl, computed
// vertices cost Ci plus their parents' costs; only vertices needed for the
// terminals count.
func planCost(w *graph.DAG, costs Costs, reuse map[string]bool) float64 {
	rec := make(map[string]float64)
	for _, n := range w.TopoOrder() {
		switch {
		case n.IsSource() || n.Computed:
			rec[n.ID] = 0
		case reuse[n.ID]:
			rec[n.ID] = costs.Load[n.ID]
		default:
			c := costs.Compute[n.ID]
			for _, p := range n.Parents {
				c += rec[p.ID]
			}
			rec[n.ID] = c
		}
	}
	var total float64
	for _, t := range w.Terminals() {
		total += rec[t.ID]
	}
	return total
}

// TestQuickLinearPlanNeverWorseThanBaselines: the LN plan's cost must not
// exceed ALL_C (compute everything) or ALL_M (load all materialized), and
// must not exceed any random feasible plan — optimality under the DP cost
// model.
func TestQuickLinearPlanNeverWorseThanBaselines(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, costs := randomWorkload(rng, 5+rng.Intn(40))
		ln := Linear{}.Plan(w, costs)
		lnCost := planCost(w, costs, ln.Reuse)

		if allc := planCost(w, costs, map[string]bool{}); lnCost > allc+1e-9 {
			return false
		}
		allM := AllMaterialized{}.Plan(w, costs)
		if amCost := planCost(w, costs, allM.Reuse); lnCost > amCost+1e-9 {
			return false
		}
		// Random feasible subsets of the materialized vertices.
		var materialized []string
		for _, n := range w.Nodes() {
			if !math.IsInf(costs.Load[n.ID], 1) {
				materialized = append(materialized, n.ID)
			}
		}
		for trial := 0; trial < 20; trial++ {
			sub := make(map[string]bool)
			for _, id := range materialized {
				if rng.Intn(2) == 0 {
					sub[id] = true
				}
			}
			if lnCost > planCost(w, costs, sub)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickBackwardPruneIsCostNeutral: pruning the forward-pass reuse set
// must not change the plan's cost — it only removes vertices off the
// execution path.
func TestQuickBackwardPruneIsCostNeutral(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, costs := randomWorkload(rng, 5+rng.Intn(40))
		// Forward pass only.
		order := w.TopoOrder()
		rec := make(map[string]float64)
		forward := make(map[string]bool)
		for _, n := range order {
			if n.IsSource() || n.Computed {
				rec[n.ID] = 0
				continue
			}
			var p float64
			for _, par := range n.Parents {
				p += rec[par.ID]
			}
			exec := costs.Compute[n.ID] + p
			if cl := costs.Load[n.ID]; cl < exec {
				rec[n.ID] = cl
				forward[n.ID] = true
			} else {
				rec[n.ID] = exec
			}
		}
		pruned := backwardPrune(w, forward)
		if len(pruned) > len(forward) {
			return false
		}
		return math.Abs(planCost(w, costs, forward)-planCost(w, costs, pruned)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickHelixAlwaysMatchesLinear extends the fixed-seed equivalence
// test across the quick generator.
func TestQuickHelixAlwaysMatchesLinear(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, costs := randomWorkload(rng, 5+rng.Intn(40))
		lp := Linear{}.Plan(w, costs)
		hp := Helix{}.Plan(w, costs)
		return math.Abs(planCost(w, costs, lp.Reuse)-planCost(w, costs, hp.Reuse)) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
