// Benchmarks regenerating the paper's evaluation: one benchmark per table
// and figure of §7 (see DESIGN.md for the experiment index). Each runs the
// corresponding experiment end to end and reports headline metrics via
// b.ReportMetric, so `go test -bench=.` reproduces every result series.
//
// The underlying data scale is chosen so the full benchmark suite finishes
// in minutes; cmd/experiments runs the same experiments with configurable
// scale and full workload counts.
package repro

import (
	"io"
	"testing"

	"repro/internal/experiments"
)

// benchSuite builds the experiment suite used by the benchmarks.
func benchSuite() *experiments.Suite {
	s := experiments.DefaultSuite(io.Discard)
	s.Kaggle.Scale = 2
	s.OpenMLRuns = 200
	s.SynthWorkloads = 200
	return s
}

func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		var bytes int64
		for _, r := range rows {
			bytes += r.TotalBytes
		}
		b.ReportMetric(float64(bytes)/(1<<20), "artifact-MB")
	}
}

func BenchmarkFig4RepeatedExecution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res, err := s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		// Headline: CO's run1/run2 speedup on workload 2.
		for _, r := range res {
			if r.System == "CO" && r.Workload == 2 {
				b.ReportMetric(r.Run1.Seconds()/r.Run2.Seconds(), "co-w2-speedup")
			}
		}
	}
}

func BenchmarkFig5Sequence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res, err := s.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		var co, kg float64
		for _, r := range res {
			total := r.Cumulative[len(r.Cumulative)-1].Seconds()
			switch r.System {
			case "CO":
				co = total
			case "KG":
				kg = total
			}
		}
		b.ReportMetric(kg/co, "sequence-speedup")
	}
}

func BenchmarkFig6Materialization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		total, err := s.TotalArtifactBytes()
		if err != nil {
			b.Fatal(err)
		}
		// Headline: SA's real-size-to-budget ratio at the 8GB level.
		for _, r := range res {
			if r.Strategy == "SA" && r.Budget == "8GB" {
				budget := float64(total) / 16
				b.ReportMetric(float64(r.SizeAfter[len(r.SizeAfter)-1])/budget, "sa-size-over-budget")
			}
		}
	}
}

func BenchmarkFig7aRunTimeByBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res, err := s.Fig7a()
		if err != nil {
			b.Fatal(err)
		}
		var sa16, hl16 float64
		for _, r := range res {
			if r.Budget == "16GB" {
				switch r.Strategy {
				case "SA":
					sa16 = r.Total.Seconds()
				case "HL":
					hl16 = r.Total.Seconds()
				}
			}
		}
		if sa16 > 0 {
			b.ReportMetric(hl16/sa16, "hl-over-sa-16gb")
		}
	}
}

func BenchmarkFig7bSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res, err := s.Fig7b()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Label == "SA-16" {
				b.ReportMetric(r.Speedup[len(r.Speedup)-1], "sa16-final-speedup")
			}
		}
	}
}

func BenchmarkFig8aModelBenchmarking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res, err := s.Fig8a()
		if err != nil {
			b.Fatal(err)
		}
		var co, oml float64
		for _, r := range res {
			total := r.Cumulative[len(r.Cumulative)-1].Seconds()
			if r.System == "CO" {
				co = total
			} else {
				oml = total
			}
		}
		b.ReportMetric(oml/co, "benchmarking-speedup")
	}
}

func BenchmarkFig8bAlphaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		s.OpenMLRuns = 120 // the α sweep runs the scenario 7 times
		res, err := s.Fig8b()
		if err != nil {
			b.Fatal(err)
		}
		// Headline: final delta of the smallest α (slowest to pin gold).
		if len(res) > 0 {
			b.ReportMetric(res[0].Delta[len(res[0].Delta)-1].Seconds(), "alpha0-final-delta-s")
		}
	}
}

func BenchmarkFig9abReusePlanners(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res, err := s.Fig9ab()
		if err != nil {
			b.Fatal(err)
		}
		var ln, allc float64
		for _, r := range res {
			if r.Strategy != "SA" {
				continue
			}
			total := r.Cumulative[len(r.Cumulative)-1].Seconds()
			switch r.Planner {
			case "LN":
				ln = total
			case "ALL_C":
				allc = total
			}
		}
		if ln > 0 {
			b.ReportMetric(allc/ln, "ln-speedup-vs-allc")
		}
	}
}

func BenchmarkFig9cSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		ab, err := s.Fig9ab()
		if err != nil {
			b.Fatal(err)
		}
		res := s.Fig9c(ab)
		for _, r := range res {
			if r.Planner == "LN" {
				b.ReportMetric(r.Speedup[len(r.Speedup)-1], "ln-final-speedup")
			}
		}
	}
}

func BenchmarkFig9dReuseOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		res, err := s.Fig9d()
		if err != nil {
			b.Fatal(err)
		}
		if len(res) == 2 && res[0].Total > 0 {
			b.ReportMetric(float64(res[1].Total)/float64(res[0].Total), "hl-over-ln-overhead")
		}
	}
}

func BenchmarkFig10Warmstarting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite()
		// Warmstarting needs a populated donor pool before its effect
		// shows; 200 runs are too few (see EXPERIMENTS.md, Fig 10).
		s.OpenMLRuns = 600
		res, err := s.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		var oml, cow float64
		for _, r := range res {
			total := r.Cumulative[len(r.Cumulative)-1].Seconds()
			switch r.System {
			case "OML":
				oml = total
			case "CO+W":
				cow = total
			}
		}
		if cow > 0 {
			b.ReportMetric(oml/cow, "warmstart-speedup")
		}
	}
}
