// Package repro is the public API of this reproduction of "Optimizing
// Machine Learning Workloads in Collaborative Environments" (SIGMOD 2020).
//
// The library optimizes repeated and modified executions of ML workloads
// in a collaborative setting. Users express a workload as a DAG of
// artifacts (datasets, aggregates, models) connected by operations; a
// shared server maintains an Experiment Graph (EG) of every executed
// workload, materializes the artifacts most likely to be reused under a
// storage budget (§5 of the paper), and rewrites incoming DAGs with a
// linear-time reuse algorithm (§6) so clients load artifacts instead of
// recomputing them. Model-training operations can additionally be
// warmstarted from previously trained models.
//
// Minimal usage:
//
//	srv := repro.NewMemoryServer(repro.WithBudget(1 << 30))
//	client := repro.NewClient(srv)
//
//	w := repro.NewWorkload()
//	train := w.AddCSVSource("train.csv", frame)
//	clean := w.Apply(train, repro.FillNA{})
//	model := w.Apply(clean, &repro.Train{
//		Spec:  repro.ModelSpec{Kind: "gbt", Params: map[string]float64{"n_trees": 30}},
//		Label: "y",
//	})
//	_ = model
//	result, err := client.Run(w.DAG)
//
// Re-running the same (or a modified) workload through the same server
// reuses the materialized artifacts automatically.
package repro

import (
	"net/http"

	"repro/internal/autopipeline"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/data"
	"repro/internal/graph"
	"repro/internal/materialize"
	"repro/internal/ml"
	"repro/internal/ops"
	"repro/internal/remote"
	"repro/internal/reuse"
	"repro/internal/store"
)

// Core data-model types.
type (
	// Frame is the columnar dataframe type.
	Frame = data.Frame
	// Column is one typed, lineage-tracked column.
	Column = data.Column
	// DAG is a workload graph.
	DAG = graph.DAG
	// Node is a workload vertex.
	Node = graph.Node
	// Artifact is vertex content: dataset, aggregate, or model.
	Artifact = graph.Artifact
	// DatasetArtifact wraps a Frame as vertex content.
	DatasetArtifact = graph.DatasetArtifact
	// AggregateArtifact wraps a scalar as vertex content.
	AggregateArtifact = graph.AggregateArtifact
	// ModelArtifact wraps a trained model as vertex content.
	ModelArtifact = graph.ModelArtifact
	// Operation is a workload edge.
	Operation = graph.Operation
	// Kind is a vertex/artifact kind.
	Kind = graph.Kind
)

// Orchestration types.
type (
	// Server owns the Experiment Graph, artifact store, materializer,
	// and reuse planner.
	Server = core.Server
	// Client runs workloads against a server.
	Client = core.Client
	// RunResult reports a workload execution.
	RunResult = core.RunResult
	// ServerOption configures NewServer.
	ServerOption = core.ServerOption
	// StorageProfile models where EG content lives (memory/disk/remote).
	StorageProfile = cost.Profile
)

// Server options, re-exported from internal/core.
var (
	// WithBudget sets the materialization budget in bytes.
	WithBudget = core.WithBudget
	// WithStrategy sets the materialization strategy.
	WithStrategy = core.WithStrategy
	// WithPlanner sets the reuse planner.
	WithPlanner = core.WithPlanner
	// WithWarmstart enables warmstart donor search.
	WithWarmstart = core.WithWarmstart
)

// Storage profiles.
var (
	// MemoryProfile is an in-process EG (the paper's setup).
	MemoryProfile = cost.Memory
	// DiskProfile is an SSD-resident EG.
	DiskProfile = cost.Disk
	// RemoteProfile is an EG behind a network hop.
	RemoteProfile = cost.Remote
)

// NewMemoryServer builds a server whose artifact store lives in memory.
func NewMemoryServer(opts ...ServerOption) *Server {
	return core.NewServer(store.New(cost.Memory()), opts...)
}

// NewServerWithProfile builds a server with an explicit storage profile.
func NewServerWithProfile(p StorageProfile, opts ...ServerOption) *Server {
	return core.NewServer(store.New(p), opts...)
}

// NewClient binds a client to an optimizer — an in-process *Server or a
// remote optimizer from NewRemoteOptimizer.
func NewClient(srv core.Optimizer) *Client { return core.NewClient(srv) }

// NewHTTPHandler exposes a server over the HTTP protocol (what the collabd
// daemon serves).
func NewHTTPHandler(srv *Server) http.Handler { return remote.NewHandler(srv) }

// NewRemoteOptimizer connects to a collabd server at baseURL; pass the
// result to NewClient. Transfer costs are modeled with RemoteProfile.
func NewRemoteOptimizer(baseURL string) *remote.Client {
	return remote.NewClient(baseURL, cost.Remote())
}

// Materialization strategies (§5) for WithStrategy.
type (
	// MaterializeConfig carries α and the storage profile.
	MaterializeConfig = materialize.Config
	// MaterializeStrategy selects artifacts to store.
	MaterializeStrategy = materialize.Strategy
)

// Strategy constructors.
var (
	// NewGreedyMaterializer is Algorithm 1 (heuristics-based, "HM").
	NewGreedyMaterializer = materialize.NewGreedy
	// NewStorageAwareMaterializer is the §5.3 deduplicating strategy.
	NewStorageAwareMaterializer = materialize.NewStorageAware
	// NewHelixMaterializer is the Helix baseline.
	NewHelixMaterializer = materialize.NewHelix
	// NewAllMaterializer stores everything.
	NewAllMaterializer = materialize.NewAll
)

// Reuse planners (§6) for WithPlanner.
type (
	// LinearReuse is the paper's linear-time algorithm.
	LinearReuse = reuse.Linear
	// HelixReuse is the polynomial-time max-flow baseline.
	HelixReuse = reuse.Helix
	// AllMaterializedReuse loads every materialized artifact.
	AllMaterializedReuse = reuse.AllMaterialized
	// AllComputeReuse disables reuse.
	AllComputeReuse = reuse.AllCompute
)

// Workload wraps a DAG with convenience constructors.
type Workload struct {
	// DAG is the underlying workload graph, passed to Client.Run.
	DAG *DAG
}

// NewWorkload returns an empty workload.
func NewWorkload() *Workload { return &Workload{DAG: graph.NewDAG()} }

// AddSource registers a raw dataset with content.
func (w *Workload) AddSource(name string, frame *Frame) *Node {
	return w.DAG.AddSource(name, &graph.DatasetArtifact{Frame: frame})
}

// AddCSVSource is AddSource under its spiritual name for frames parsed
// from CSV files.
func (w *Workload) AddCSVSource(name string, frame *Frame) *Node {
	return w.AddSource(name, frame)
}

// Apply derives a new vertex by applying op to parent.
func (w *Workload) Apply(parent *Node, op Operation) *Node {
	return w.DAG.Apply(parent, op)
}

// Combine derives a new vertex from a multi-input operation.
func (w *Workload) Combine(op Operation, parents ...*Node) *Node {
	return w.DAG.Combine(op, parents...)
}

// ReadCSVFile parses a CSV file into a Frame with inferred column types.
func ReadCSVFile(path string) (*Frame, error) { return data.ReadCSVFile(path) }

// Column constructors.
var (
	// NewFloatColumn builds a float64 column (NaN encodes missing).
	NewFloatColumn = data.NewFloatColumn
	// NewIntColumn builds an int64 column.
	NewIntColumn = data.NewIntColumn
	// NewStringColumn builds a string column ("" encodes missing).
	NewStringColumn = data.NewStringColumn
	// NewBoolColumn builds a bool column.
	NewBoolColumn = data.NewBoolColumn
)

// NewFrameFromColumns assembles a dataframe from equal-length columns.
func NewFrameFromColumns(cols ...*Column) (*Frame, error) {
	return data.NewFrame(cols...)
}

// OpHash builds the canonical operation hash from a name and a
// deterministic parameter rendering. Custom operations use it to implement
// Operation.Hash (§4.2, Listing 2).
func OpHash(name, params string) string { return graph.OpHash(name, params) }

// DeriveColumnID derives the lineage ID of a column produced by an
// operation from an input column; custom operations use it so the
// storage-aware materializer can deduplicate their outputs.
func DeriveColumnID(opHash, inputColumnID string) string {
	return data.DeriveID(opHash, inputColumnID)
}

// Artifact kinds, for custom operations' OutKind.
const (
	DatasetKind   = graph.DatasetKind
	AggregateKind = graph.AggregateKind
	ModelKind     = graph.ModelKind
)

// Operations vocabulary, re-exported from internal/ops. Data preprocessing:
type (
	// Select keeps named columns.
	Select = ops.Select
	// Drop removes named columns.
	Drop = ops.Drop
	// Filter keeps rows matching a comparison.
	Filter = ops.Filter
	// MapCol applies a unary function to one column.
	MapCol = ops.MapCol
	// Derive appends a row-wise combination of columns.
	Derive = ops.Derive
	// FillNA imputes missing values with column means.
	FillNA = ops.FillNA
	// OneHot expands a categorical column.
	OneHot = ops.OneHot
	// Sample draws rows without replacement.
	Sample = ops.Sample
	// GroupByAgg groups and aggregates.
	GroupByAgg = ops.GroupByAgg
	// Join hash-joins two datasets (use Combine).
	Join = ops.Join
	// Concat concatenates columns of datasets (use Combine).
	Concat = ops.Concat
	// Align keeps columns common to two datasets (use Combine).
	Align = ops.Align
	// AggregateCol reduces a column to a scalar.
	AggregateCol = ops.AggregateCol
	// CountVectorize builds token-count features from text.
	CountVectorize = ops.CountVectorize
	// ScaleTransform standardizes numeric features.
	ScaleTransform = ops.ScaleTransform
	// SelectKBest keeps the K most label-correlated features.
	SelectKBest = ops.SelectKBest
	// PCATransform projects onto principal components.
	PCATransform = ops.PCATransform
	// KDE2D is an external (non-materializable) visualization.
	KDE2D = ops.KDE2D
)

// Model training and scoring:
type (
	// Train fits a model and scores it on a held-out split.
	Train = ops.Train
	// ModelSpec names a learner and its hyperparameters.
	ModelSpec = ops.ModelSpec
	// Predict scores a dataset with a model (use Combine).
	Predict = ops.Predict
	// Evaluate computes a metric of a model on a dataset (use Combine).
	Evaluate = ops.Evaluate
)

// ColumnAgg names one group-by aggregation (column + function).
type ColumnAgg = data.Agg

// Aggregate functions for GroupByAgg and AggregateCol.
const (
	AggMean  = data.AggMean
	AggSum   = data.AggSum
	AggMin   = data.AggMin
	AggMax   = data.AggMax
	AggCount = data.AggCount
)

// Join kinds.
const (
	InnerJoin = data.Inner
	LeftJoin  = data.Left
)

// Automatic pipeline construction and hyperparameter tuning (the paper's
// §9 future work, implemented over the Experiment Graph).
type (
	// MinedPipeline is an operation chain extracted from EG together
	// with the quality it achieved.
	MinedPipeline = autopipeline.Mined
	// SpecScore pairs a recorded model configuration with its quality.
	SpecScore = autopipeline.SpecScore
)

// Auto-ML helpers over a server's Experiment Graph.
var (
	// MinePipelines extracts the best-performing linear pipelines.
	MinePipelines = autopipeline.Mine
	// InstantiatePipeline replays a mined pipeline on a new source node.
	InstantiatePipeline = autopipeline.Instantiate
	// SuggestModelSpecs proposes new hyperparameter configurations by
	// perturbing the best EG-recorded ones.
	SuggestModelSpecs = autopipeline.SuggestSpecs
	// ModelSpecHistory lists recorded configurations for a learner kind.
	ModelSpecHistory = autopipeline.History
)

// Learner interfaces for custom extensions.
type (
	// Model is the trainable-learner interface.
	Model = ml.Model
	// Warmstarter marks models that can adopt donor parameters.
	Warmstarter = ml.Warmstarter
)
